package htmlx

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleTree(t *testing.T) {
	root := Parse(`<html><body><div id="x">hello <b>world</b></div></body></html>`)
	div := root.ByID("x")
	if div == nil {
		t.Fatal("div#x not found")
	}
	if div.Tag != "div" {
		t.Fatalf("tag = %q", div.Tag)
	}
	if got := div.TextContent(); got != "hello world" {
		t.Fatalf("TextContent = %q", got)
	}
	bs := root.ByTag("b")
	if len(bs) != 1 || bs[0].TextContent() != "world" {
		t.Fatalf("b extraction wrong: %v", bs)
	}
}

func TestParseAttributes(t *testing.T) {
	root := Parse(`<a href="/x?a=1&amp;b=2" class='link' disabled data-v=42>go</a>`)
	a := root.ByTag("a")[0]
	if v, _ := a.Attr("href"); v != "/x?a=1&b=2" {
		t.Errorf("href = %q (entities should unescape)", v)
	}
	if v, _ := a.Attr("class"); v != "link" {
		t.Errorf("class = %q", v)
	}
	if _, ok := a.Attr("disabled"); !ok {
		t.Error("bare attribute missing")
	}
	if v, _ := a.Attr("data-v"); v != "42" {
		t.Errorf("unquoted attribute = %q", v)
	}
	if _, ok := a.Attr("absent"); ok {
		t.Error("absent attribute found")
	}
	if a.AttrOr("absent", "d") != "d" {
		t.Error("AttrOr default wrong")
	}
}

func TestParseVoidAndSelfClosing(t *testing.T) {
	root := Parse(`<p>a<br>b<img src="x"/>c</p><input name="q">`)
	if len(root.ByTag("br")) != 1 || len(root.ByTag("img")) != 1 || len(root.ByTag("input")) != 1 {
		t.Fatal("void elements not parsed")
	}
	p := root.ByTag("p")[0]
	if got := p.TextContent(); got != "a b c" {
		t.Fatalf("text around voids = %q", got)
	}
}

func TestParseCommentsAndDoctype(t *testing.T) {
	root := Parse(`<!DOCTYPE html><!-- a <b> comment --><div>x</div><!-- unterminated`)
	if len(root.ByTag("b")) != 0 {
		t.Error("tag inside comment parsed")
	}
	if got := root.TextContent(); got != "x" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestParseScriptRawText(t *testing.T) {
	root := Parse(`<script>if (a < b) { x = "<div>"; }</script><p>after</p>`)
	script := root.ByTag("script")[0]
	if !strings.Contains(script.TextContent(), `a < b`) {
		t.Errorf("script body = %q", script.TextContent())
	}
	if len(root.ByTag("div")) != 0 {
		t.Error("markup inside script parsed as elements")
	}
	if len(root.ByTag("p")) != 1 {
		t.Error("content after script lost")
	}
}

func TestParseImpliedOptionEnd(t *testing.T) {
	root := Parse(`<select name="c">
		<option value="0">red
		<option value="1" selected>blue
		<option value="2">green
	</select>`)
	opts := root.ByTag("option")
	if len(opts) != 3 {
		t.Fatalf("options = %d, want 3", len(opts))
	}
	for i, want := range []string{"red", "blue", "green"} {
		if got := opts[i].TextContent(); got != want {
			t.Errorf("option %d text = %q, want %q", i, got, want)
		}
	}
	// Options must be siblings, not nested.
	if opts[0].Find(func(n *Node) bool { return n != opts[0] && n.Tag == "option" }) != nil {
		t.Error("options nested instead of siblings")
	}
}

func TestParseImpliedTableEnds(t *testing.T) {
	root := Parse(`<table><tr><td>a<td>b<tr><td>c<td>d</table>`)
	trs := root.ByTag("tr")
	if len(trs) != 2 {
		t.Fatalf("rows = %d, want 2", len(trs))
	}
	for i, tr := range trs {
		tds := 0
		for _, c := range tr.Children {
			if c.Tag == "td" {
				tds++
			}
		}
		if tds != 2 {
			t.Errorf("row %d has %d direct td children, want 2", i, tds)
		}
	}
}

func TestParseStrayEndTagAndLoneLT(t *testing.T) {
	root := Parse(`</div><p>1 < 2 and <b>fine</b></p>`)
	p := root.ByTag("p")
	if len(p) != 1 {
		t.Fatalf("p count = %d", len(p))
	}
	if got := p[0].TextContent(); got != "1 < 2 and fine" {
		t.Errorf("text = %q", got)
	}
}

func TestParseEntitiesInText(t *testing.T) {
	root := Parse(`<span>Fish &amp; Chips &lt;deluxe&gt; &#65;</span>`)
	if got := root.ByTag("span")[0].TextContent(); got != "Fish & Chips <deluxe> A" {
		t.Errorf("text = %q", got)
	}
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	cases := []string{
		"", "<", "<>", "<a", "<a href=", `<a href="unterminated`, "</", "<!",
		"<!--", "<select><option>", "text only", "<<<>>>", "<a/><b/></b></a>",
		"<table><td>no row</table>", "<script>never closed",
	}
	for _, c := range cases {
		root := Parse(c)
		if root == nil {
			t.Fatalf("Parse(%q) returned nil", c)
		}
	}
}

func TestExtractFormsBasic(t *testing.T) {
	page := `
	<html><body>
	<form name="search" action="/search" method="get">
	  <select name="make">
	    <option value="">any</option>
	    <option value="0">toyota</option>
	    <option value="1">honda</option>
	  </select>
	  <select name="color" multiple>
	    <option value="0" selected>red<option value="1">blue
	  </select>
	  <input type="hidden" name="v" value="1">
	  <input type="submit" value="Search">
	</form>
	</body></html>`
	forms := ExtractForms(Parse(page))
	if len(forms) != 1 {
		t.Fatalf("forms = %d", len(forms))
	}
	f := forms[0]
	if f.Action != "/search" || f.Method != "GET" || f.Name != "search" {
		t.Fatalf("form meta = %+v", f)
	}
	if len(f.Selects) != 2 {
		t.Fatalf("selects = %d", len(f.Selects))
	}
	mk := f.SelectByName("make")
	if mk == nil || len(mk.Options) != 3 {
		t.Fatalf("make select = %+v", mk)
	}
	if mk.Options[1].Value != "0" || mk.Options[1].Label != "toyota" {
		t.Fatalf("option = %+v", mk.Options[1])
	}
	color := f.SelectByName("color")
	if !color.Multiple {
		t.Error("multiple flag lost")
	}
	if !color.Options[0].Selected || color.Options[1].Selected {
		t.Error("selected flags wrong")
	}
	if len(f.Inputs) != 2 || f.Inputs[0].Type != "hidden" || f.Inputs[0].Value != "1" {
		t.Fatalf("inputs = %+v", f.Inputs)
	}
	if f.SelectByName("nope") != nil {
		t.Error("SelectByName found nonexistent control")
	}
}

func TestExtractFormDefaults(t *testing.T) {
	forms := ExtractForms(Parse(`<form><select name="s"><option>plain</option></select></form>`))
	if len(forms) != 1 {
		t.Fatal("form missing")
	}
	if forms[0].Method != "GET" {
		t.Errorf("default method = %q", forms[0].Method)
	}
	opt := forms[0].Selects[0].Options[0]
	if opt.Value != "plain" || opt.Label != "plain" {
		t.Errorf("valueless option = %+v (value should default to label)", opt)
	}
}

func TestFormByName(t *testing.T) {
	page := `<form name="a" action="/a"></form><form name="b" action="/b/search"></form>`
	root := Parse(page)
	if f := FormByName(root, ""); f == nil || f.Name != "a" {
		t.Error("empty name should return first form")
	}
	if f := FormByName(root, "b"); f == nil || f.Name != "b" {
		t.Error("by name failed")
	}
	if f := FormByName(root, "search"); f == nil || f.Name != "b" {
		t.Error("by action substring failed")
	}
	if f := FormByName(root, "zzz"); f != nil {
		t.Error("nonexistent form found")
	}
	if f := FormByName(Parse("<p>no forms</p>"), ""); f != nil {
		t.Error("found form in formless page")
	}
}

func TestExtractTables(t *testing.T) {
	page := `
	<table id="results">
	  <tr><th>make</th><th>price</th></tr>
	  <tr><td data-id="7">toyota</td><td>12000</td></tr>
	  <tr><td data-id="9">honda</td><td>9500</td></tr>
	</table>`
	tbl := TableByID(Parse(page), "results")
	if tbl == nil {
		t.Fatal("table not found")
	}
	if len(tbl.Header) != 2 || tbl.Header[0] != "make" {
		t.Fatalf("header = %v", tbl.Header)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0].Text != "toyota" || tbl.Rows[1][1].Text != "9500" {
		t.Fatalf("cells wrong: %+v", tbl.Rows)
	}
	if id, ok := tbl.Rows[0][0].Attr("data-id"); !ok || id != "7" {
		t.Fatalf("cell attr = %q,%v", id, ok)
	}
	if _, ok := tbl.Rows[0][0].Attr("absent"); ok {
		t.Error("absent cell attr found")
	}
	if TableByID(Parse(page), "zzz") != nil {
		t.Error("nonexistent table found")
	}
}

func TestExtractTablesWithTbodyAndNoHeader(t *testing.T) {
	page := `<table id="t"><tbody><tr><td>1</td><td>2</td></tr></tbody></table>`
	tbl := TableByID(Parse(page), "t")
	if tbl == nil || len(tbl.Header) != 0 || len(tbl.Rows) != 1 {
		t.Fatalf("table = %+v", tbl)
	}
}

func TestExtractNestedTables(t *testing.T) {
	page := `<table id="outer"><tr><td>x<table id="inner"><tr><td>y</td></tr></table></td></tr></table>`
	root := Parse(page)
	outer := TableByID(root, "outer")
	inner := TableByID(root, "inner")
	if outer == nil || inner == nil {
		t.Fatal("tables missing")
	}
	if len(outer.Rows) != 1 {
		t.Fatalf("outer rows = %d (nested rows leaked)", len(outer.Rows))
	}
	if len(inner.Rows) != 1 || inner.Rows[0][0].Text != "y" {
		t.Fatalf("inner rows = %+v", inner.Rows)
	}
}

func TestMixedCaseTags(t *testing.T) {
	root := Parse(`<DIV ID="X"><SPAN>t</SPAN></DIV>`)
	if root.ByID("X") == nil {
		t.Error("uppercase id attr key should fold, value should not")
	}
	if len(root.ByTag("span")) != 1 || len(root.ByTag("SPAN")) != 1 {
		t.Error("ByTag should be case-insensitive")
	}
}

// Property: parsing a synthesized form page always recovers exactly the
// selects and options that were rendered — the round trip the HTTP
// connector depends on for schema discovery.
func TestFormRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSelects := 1 + rng.Intn(5)
		var b strings.Builder
		b.WriteString(`<html><body><form name="f" action="/s" method="get">`)
		wantOpts := make([][]string, nSelects)
		for i := 0; i < nSelects; i++ {
			fmt.Fprintf(&b, `<select name="sel%d">`, i)
			nOpts := 2 + rng.Intn(6)
			for j := 0; j < nOpts; j++ {
				label := fmt.Sprintf("opt %d&%d <x>", i, j)
				fmt.Fprintf(&b, `<option value="%d">%s</option>`, j, strings.ReplaceAll(strings.ReplaceAll(label, "&", "&amp;"), "<", "&lt;"))
				wantOpts[i] = append(wantOpts[i], label)
			}
			b.WriteString("</select>")
		}
		b.WriteString(`</form></body></html>`)
		forms := ExtractForms(Parse(b.String()))
		if len(forms) != 1 || len(forms[0].Selects) != nSelects {
			return false
		}
		for i, sel := range forms[0].Selects {
			if sel.Name != fmt.Sprintf("sel%d", i) || len(sel.Options) != len(wantOpts[i]) {
				return false
			}
			for j, opt := range sel.Options {
				if opt.Label != wantOpts[i][j] || opt.Value != fmt.Sprintf("%d", j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse terminates and returns a tree for random byte soup.
func TestParseFuzzProperty(t *testing.T) {
	chars := []byte(`<>/="' abAB!-&;`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = chars[rng.Intn(len(chars))]
		}
		return Parse(string(buf)) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTextContentWhitespaceCollapse(t *testing.T) {
	root := Parse("<p>  a\n\t b  <i> c </i>  </p>")
	if got := root.ByTag("p")[0].TextContent(); got != "a b c" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestIsTextAndFind(t *testing.T) {
	root := Parse(`<div><p>x</p></div>`)
	txt := root.Find(func(n *Node) bool { return n.IsText() })
	if txt == nil || txt.Text != "x" {
		t.Fatalf("text node = %+v", txt)
	}
	if root.Find(func(n *Node) bool { return n.Tag == "video" }) != nil {
		t.Error("found nonexistent node")
	}
}
