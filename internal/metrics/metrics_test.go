package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalize(t *testing.T) {
	got := Normalize([]int{1, 3})
	if got[0] != 0.25 || got[1] != 0.75 {
		t.Fatalf("Normalize = %v", got)
	}
	zero := Normalize([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("Normalize zeros = %v", zero)
	}
}

func TestTV(t *testing.T) {
	if got := TV([]float64{1, 0}, []float64{0, 1}); got != 1 {
		t.Errorf("TV disjoint = %g, want 1", got)
	}
	if got := TV([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("TV identical = %g, want 0", got)
	}
	if got := TV([]float64{0.7, 0.3}, []float64{0.5, 0.5}); !almost(got, 0.2, 1e-12) {
		t.Errorf("TV = %g, want 0.2", got)
	}
	if got := TVFromCounts([]int{7, 3}, []float64{0.5, 0.5}); !almost(got, 0.2, 1e-12) {
		t.Errorf("TVFromCounts = %g, want 0.2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	TV([]float64{1}, []float64{0.5, 0.5})
}

func TestL2(t *testing.T) {
	if got := L2([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("L2 = %g, want 5", got)
	}
}

func TestMeanStdDevCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g", got)
	}
	if got := CV(xs); got != 0.4 {
		t.Errorf("CV = %g", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || CV(nil) != 0 {
		t.Error("empty input should yield zeros")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CV should be 0")
	}
	if CV([]float64{3, 3, 3}) != 0 {
		t.Error("uniform CV should be 0")
	}
}

func TestKS(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got := KS(uniform, uniform); got != 0 {
		t.Fatalf("KS(p,p) = %g, want 0", got)
	}
	// All mass shifted to the last cell: max CDF gap is 0.75 (after cell 3).
	shifted := []float64{0, 0, 0, 1}
	if got := KS(uniform, shifted); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("KS = %g, want 0.75", got)
	}
	if got := KS(shifted, uniform); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("KS not symmetric: %g", got)
	}
	// A local swap registers smaller drift than a systematic shift.
	swap := []float64{0.25, 0.3, 0.2, 0.25}
	if a, b := KS(uniform, swap), KS(uniform, shifted); a >= b {
		t.Fatalf("local perturbation KS %g >= systematic shift KS %g", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	KS([]float64{1}, []float64{0.5, 0.5})
}

func TestKSFromCounts(t *testing.T) {
	want := []float64{0.25, 0.25, 0.25, 0.25}
	if got := KSFromCounts([]int{10, 10, 10, 10}, want); got != 0 {
		t.Fatalf("KSFromCounts = %g, want 0", got)
	}
	if got := KSFromCounts([]int{40, 0, 0, 0}, want); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("KSFromCounts = %g, want 0.75", got)
	}
}

func TestChiSquareStat(t *testing.T) {
	// Textbook: obs (8,12), exp (10,10) -> 0.4+0.4 = 0.8.
	if got := ChiSquareStat([]int{8, 12}, []float64{10, 10}); !almost(got, 0.8, 1e-12) {
		t.Errorf("stat = %g, want 0.8", got)
	}
	// Zero-expected cells are skipped rather than dividing by zero.
	if got := ChiSquareStat([]int{5, 5}, []float64{10, 0}); !almost(got, 2.5, 1e-12) {
		t.Errorf("stat with zero cell = %g, want 2.5", got)
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// Critical values: P(X²_1 >= 3.841) = 0.05, P(X²_5 >= 11.07) = 0.05,
	// P(X²_10 >= 18.31) = 0.05 (standard tables).
	cases := []struct {
		stat float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{11.07, 5, 0.05},
		{18.31, 10, 0.05},
		{6.635, 1, 0.01},
		{2.706, 1, 0.10},
		{4.605, 2, 0.10},
	}
	for _, c := range cases {
		got := ChiSquarePValue(c.stat, c.df)
		if !almost(got, c.want, 0.001) {
			t.Errorf("p(stat=%g, df=%d) = %g, want %g", c.stat, c.df, got, c.want)
		}
	}
	if got := ChiSquarePValue(0, 3); got != 1 {
		t.Errorf("p(0) = %g, want 1", got)
	}
	if got := ChiSquarePValue(1000, 3); got > 1e-9 {
		t.Errorf("p(huge) = %g, want ~0", got)
	}
}

func TestChiSquarePValueMedian(t *testing.T) {
	// The chi-square median is roughly df·(1-2/(9df))³; p at the median
	// should be near 0.5.
	for _, df := range []int{2, 5, 20, 100} {
		median := float64(df) * math.Pow(1-2.0/(9*float64(df)), 3)
		p := ChiSquarePValue(median, df)
		if !almost(p, 0.5, 0.02) {
			t.Errorf("p at median (df=%d) = %g, want ~0.5", df, p)
		}
	}
}

// Property: the p-value is monotonically decreasing in the statistic and
// always within [0,1].
func TestChiSquarePValueMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		df := 1 + rng.Intn(50)
		prev := 1.0
		for stat := 0.5; stat < 100; stat += 2.5 {
			p := ChiSquarePValue(stat, df)
			if p < 0 || p > 1 || p > prev+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: TV is a metric bounded by 1 on probability vectors and
// symmetric.
func TestTVPropertiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		randDist := func() []float64 {
			xs := make([]float64, n)
			sum := 0.0
			for i := range xs {
				xs[i] = rng.Float64()
				sum += xs[i]
			}
			for i := range xs {
				xs[i] /= sum
			}
			return xs
		}
		p, q := randDist(), randDist()
		tv := TV(p, q)
		if tv < 0 || tv > 1+1e-12 {
			return false
		}
		if math.Abs(TV(p, q)-TV(q, p)) > 1e-12 {
			return false
		}
		return TV(p, p) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareUniformSamplesPass(t *testing.T) {
	// Sanity: chi-square on genuinely uniform draws has a non-tiny p-value.
	rng := rand.New(rand.NewSource(7))
	const cells, draws = 20, 10000
	obs := make([]int, cells)
	for i := 0; i < draws; i++ {
		obs[rng.Intn(cells)]++
	}
	exp := make([]float64, cells)
	for i := range exp {
		exp[i] = draws / float64(cells)
	}
	p := ChiSquarePValue(ChiSquareStat(obs, exp), cells-1)
	if p < 0.001 {
		t.Errorf("uniform draws rejected: p = %g", p)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{4, 1, 7, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 7 || s.Mean != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if want := StdDev([]float64{4, 1, 7, 4}) / 4; math.Abs(s.CV-want) > 1e-12 {
		t.Fatalf("cv = %g, want %g", s.CV, want)
	}
	// A perfectly balanced load has zero CV — the shard-balance reading.
	if s := Summarize([]float64{3, 3, 3}); s.CV != 0 {
		t.Fatalf("balanced cv = %g, want 0", s.CV)
	}
}
