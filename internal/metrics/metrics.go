package metrics

import (
	"fmt"
	"math"
)

// Normalize converts counts to a probability vector. An all-zero vector
// normalizes to all zeros.
func Normalize(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// TV returns the total variation distance ½·Σ|p−q| between two
// distributions of equal length; it panics on length mismatch (caller bug).
func TV(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: TV over mismatched lengths %d, %d", len(p), len(q)))
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2
}

// TVFromCounts normalizes observed counts and compares them to a target
// distribution.
func TVFromCounts(counts []int, want []float64) float64 {
	return TV(Normalize(counts), want)
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: L2 over mismatched lengths %d, %d", len(p), len(q)))
	}
	sum := 0.0
	for i := range p {
		d := p[i] - q[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// CV returns the coefficient of variation (stddev/mean) — the skew measure
// used for sample selection probabilities: 0 means perfectly uniform.
// Returns 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Summary is a compact descriptive summary of a sample — the shape the
// daemon's /metrics endpoint reports for operational distributions such
// as per-shard cache occupancy.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	// CV is the coefficient of variation (stddev/mean): 0 means perfectly
	// balanced, larger means more skew.
	CV float64
}

// Summarize computes a Summary; the zero Summary for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0], Mean: Mean(xs), CV: CV(xs)}
	for _, x := range xs[1:] {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// KS returns the Kolmogorov–Smirnov statistic between two distributions
// over the same ordered support: the maximum absolute difference of their
// cumulative sums. For discrete supports (tuple IDs) it complements the
// chi-square test: chi-square is sensitive to any per-cell distortion, KS
// to systematic drift across the support's order.
func KS(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: KS over mismatched lengths %d, %d", len(p), len(q)))
	}
	var cp, cq, max float64
	for i := range p {
		cp += p[i]
		cq += q[i]
		if d := math.Abs(cp - cq); d > max {
			max = d
		}
	}
	return max
}

// KSFromCounts normalizes observed counts and compares them to a target
// distribution.
func KSFromCounts(counts []int, want []float64) float64 {
	return KS(Normalize(counts), want)
}

// ChiSquareStat returns Σ (obs−exp)²/exp over cells with positive expected
// count; cells with exp <= 0 are skipped.
func ChiSquareStat(obs []int, expected []float64) float64 {
	if len(obs) != len(expected) {
		panic(fmt.Sprintf("metrics: chi-square over mismatched lengths %d, %d", len(obs), len(expected)))
	}
	stat := 0.0
	for i := range obs {
		if expected[i] <= 0 {
			continue
		}
		d := float64(obs[i]) - expected[i]
		stat += d * d / expected[i]
	}
	return stat
}

// ChiSquarePValue returns the upper-tail probability P(X² >= stat) for df
// degrees of freedom: the regularized upper incomplete gamma Q(df/2,
// stat/2).
func ChiSquarePValue(stat float64, df int) float64 {
	if stat <= 0 || df <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, stat/2)
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// via the series (x < a+1) or continued fraction (otherwise) expansions.
func gammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinued(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a,x) by the Lentz continued fraction.
func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
