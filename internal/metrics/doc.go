// Package metrics provides the statistical measures the experiments report:
// distribution distances (total variation, L2), skew (coefficient of
// variation of selection probabilities), and a chi-square goodness-of-fit
// test with a stdlib-only p-value via the regularized incomplete gamma
// function.
package metrics
