package jobq

import (
	"errors"
	"os"
	"sync"
	"syscall"
)

// FaultKind selects what a FaultFS injects at its trigger point.
type FaultKind int

const (
	// FaultErr fails the op with EIO, no bytes written.
	FaultErr FaultKind = iota
	// FaultENOSPC fails the op with ENOSPC, no bytes written.
	FaultENOSPC
	// FaultShortWrite writes half the buffer, then fails with ENOSPC —
	// the torn-frame case replay must tolerate. Non-write ops fail as
	// FaultENOSPC does.
	FaultShortWrite
)

// FaultFS wraps an FS and deterministically fails the FailAt-th mutating
// operation (writes, syncs, creates, renames, removes, truncates — the
// ops whose failure a crash-safe journal must survive). Once tripped it
// keeps failing every mutating op, modelling a disk that stays broken:
// tests sweep FailAt across a scripted op sequence and assert that every
// operation acknowledged before the trip survives reopen, which replays
// every injected failure point of the commit and compaction protocols.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int64
	failAt  int64
	kind    FaultKind
	tripped bool
}

// NewFaultFS wraps inner, failing the failAt-th mutating op (0-based)
// and every mutating op after it. failAt < 0 never fails, which is how
// tests count a script's total mutating ops.
func NewFaultFS(inner FS, failAt int64, kind FaultKind) *FaultFS {
	return &FaultFS{inner: inner, failAt: failAt, kind: kind}
}

// Ops returns the mutating operations observed so far.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Tripped reports whether the fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// errFor maps the kind onto its injected error.
func (f *FaultFS) errFor() error {
	if f.kind == FaultErr {
		return syscall.EIO
	}
	return syscall.ENOSPC
}

// step counts one mutating op and reports whether it must fail.
func (f *FaultFS) step() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ops
	f.ops++
	if f.failAt >= 0 && n >= f.failAt {
		f.tripped = true
	}
	return f.tripped
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if f.step() {
		return f.errFor()
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	// Opening for write (create/append/truncate) mutates; read-only
	// opens — replay — are free.
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_APPEND|os.O_TRUNC) != 0 {
		if f.step() {
			return nil, f.errFor()
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.step() {
		return f.errFor()
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if f.step() {
		return f.errFor()
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

func (f *FaultFS) Truncate(name string, size int64) error {
	if f.step() {
		return f.errFor()
	}
	return f.inner.Truncate(name, size)
}

// faultFile interposes on writes and syncs of one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.step() {
		if ff.fs.kind == FaultShortWrite && len(p) > 1 {
			n, err := ff.inner.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, syscall.ENOSPC
		}
		return 0, ff.fs.errFor()
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.step() {
		return ff.fs.errFor()
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

// IsDiskFault reports whether err is one of the error kinds FaultFS
// injects (EIO/ENOSPC), for tests asserting failure provenance.
func IsDiskFault(err error) bool {
	return errors.Is(err, syscall.EIO) || errors.Is(err, syscall.ENOSPC)
}
