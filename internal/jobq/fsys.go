package jobq

import (
	"io"
	"os"
)

// FS is the filesystem surface the journal writes through. The
// indirection exists for the same reason internal/faultform exists for
// the wire: disk failures (short writes, fsync errors, ENOSPC) must be
// injectable deterministically so every crash point of the commit and
// compaction protocols can be replayed in tests. Production code uses
// OSFS; tests wrap it in a FaultFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens name like os.OpenFile. Opening a directory with
	// O_RDONLY must yield a File whose Sync flushes the directory entry
	// (the journal fsyncs the directory after renames and creates).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	Truncate(name string, size int64) error
}

// File is the open-file surface the journal needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
