package jobq

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Record ops. The journal is an op log over the job table: admissions,
// lease grants (each bumping the job's epoch), mid-run progress
// checkpoints and terminal transitions. Replay applies them in order.
const (
	opAdmit = "admit"
	opLease = "lease"
	opCkpt  = "ckpt"
	opTerm  = "term"
)

// record is one journal entry on the wire (JSON inside a CRC frame).
type record struct {
	Op    string    `json:"op"`
	Job   string    `json:"job"`
	Epoch int64     `json:"epoch,omitempty"`
	At    time.Time `json:"at"`

	// Spec is the opaque job specification (admit records). The journal
	// never interprets it; the owner round-trips its own encoding.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Ckpt carries a progress checkpoint (ckpt records) or final stats
	// (term records, Samples/Bills stripped).
	Ckpt *Checkpoint `json:"ckpt,omitempty"`
	// State/Pointer/Err describe terminal records: the terminal state
	// name, the on-disk sample-set checkpoint the job left behind, and
	// the error message (empty on clean completion).
	State   string `json:"state,omitempty"`
	Pointer string `json:"pointer,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Checkpoint is a mid-run progress checkpoint: everything a restarted
// daemon needs to resume the job without losing paid-for work.
type Checkpoint struct {
	// Accepted/Candidates/Rejected/Queries/QueriesSaved mirror the
	// sampler's cumulative stats at checkpoint time. Queries is the
	// cumulative interface bill — monotone across checkpoints and across
	// crash/resume boundaries.
	Accepted     int64 `json:"accepted"`
	Candidates   int64 `json:"candidates"`
	Rejected     int64 `json:"rejected"`
	Queries      int64 `json:"queries"`
	QueriesSaved int64 `json:"queries_saved"`
	// ElapsedSeconds is the sampling wall time spent so far.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Bills holds the per-accepted-candidate query bills, aligned with
	// the samples, so resumed accounting keeps per-draw provenance.
	Bills []int64 `json:"bills,omitempty"`
	// Samples is the opaque accepted-sample payload (a store.SampleSet
	// in the daemon); the journal only stores and returns it.
	Samples json.RawMessage `json:"samples,omitempty"`
}

// Terminal is a job's terminal transition as replay reports it.
type Terminal struct {
	// State is the owner's terminal state name (e.g. "completed").
	State string `json:"state"`
	// Pointer is the on-disk sample-set checkpoint path ("" when the job
	// left no samples).
	Pointer string `json:"pointer,omitempty"`
	// Err is the terminal error message, empty on clean completion.
	Err string `json:"err,omitempty"`
	// Stats carries the final cumulative stats (no samples payload).
	Stats *Checkpoint `json:"stats,omitempty"`
	At    time.Time   `json:"at"`
}

// JobRecord is one job's replayed (or live, inside a snapshot) state.
type JobRecord struct {
	ID      string          `json:"id"`
	Spec    json.RawMessage `json:"spec"`
	Created time.Time       `json:"created"`
	// Epoch is the latest lease epoch: 0 before the first lease, bumped
	// by one on every lease (initial run and each post-crash requeue).
	Epoch int64 `json:"epoch"`
	// Started is the latest lease time (zero if never leased).
	Started time.Time `json:"started,omitempty"`
	// Ckpt is the latest non-stale progress checkpoint, nil if none.
	Ckpt *Checkpoint `json:"ckpt,omitempty"`
	// Terminal is the terminal transition; nil means the job was queued
	// or running when the journal stopped — an interrupted job the owner
	// must requeue under a fresh lease.
	Terminal *Terminal `json:"terminal,omitempty"`
}

// table is the in-memory job table the journal maintains for fencing and
// compaction snapshots; replay rebuilds it from disk.
type table struct {
	jobs  map[string]*JobRecord
	order []string
	// fenced counts stale-epoch records dropped during replay.
	fenced int64
}

func newTable() *table {
	return &table{jobs: make(map[string]*JobRecord)}
}

// records returns the jobs in admission order (the snapshot body).
func (t *table) records() []*JobRecord {
	out := make([]*JobRecord, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.jobs[id])
	}
	return out
}

// load rebuilds the table from snapshot records.
func (t *table) load(jobs []*JobRecord) {
	for _, jr := range jobs {
		if jr == nil || jr.ID == "" {
			continue
		}
		if _, ok := t.jobs[jr.ID]; ok {
			continue
		}
		t.jobs[jr.ID] = jr
		t.order = append(t.order, jr.ID)
	}
}

// Errors the journal returns. Fencing errors (ErrStaleEpoch) are
// correctness signals and surface even in degraded mode.
var (
	ErrStaleEpoch = fmt.Errorf("jobq: stale epoch (job was re-leased; zombie writer fenced)")
	ErrUnknownJob = fmt.Errorf("jobq: unknown job")
	ErrExists     = fmt.Errorf("jobq: job already admitted")
	ErrTerminal   = fmt.Errorf("jobq: job already terminal")
	ErrClosed     = fmt.Errorf("jobq: journal closed")
)

// apply folds one record into the table. live selects strict mode: a
// conflicting record is an error before anything reaches disk. Replay
// mode tolerates and counts what fencing would have rejected (a crashed
// writer can never have appended one, but replay must never wedge on a
// corrupt tail's salvageable prefix).
func (t *table) apply(rec *record, live bool) error {
	switch rec.Op {
	case opAdmit:
		if _, ok := t.jobs[rec.Job]; ok {
			if live {
				return fmt.Errorf("%w: %s", ErrExists, rec.Job)
			}
			return nil
		}
		t.jobs[rec.Job] = &JobRecord{ID: rec.Job, Spec: rec.Spec, Created: rec.At}
		t.order = append(t.order, rec.Job)
		return nil
	case opLease:
		jr, ok := t.jobs[rec.Job]
		if !ok {
			if live {
				return fmt.Errorf("%w: %s", ErrUnknownJob, rec.Job)
			}
			return nil
		}
		if jr.Terminal != nil {
			if live {
				return fmt.Errorf("%w: %s", ErrTerminal, rec.Job)
			}
			t.fenced++
			return nil
		}
		if rec.Epoch <= jr.Epoch {
			if live {
				return fmt.Errorf("%w: job %s epoch %d, have %d", ErrStaleEpoch, rec.Job, rec.Epoch, jr.Epoch)
			}
			t.fenced++
			return nil
		}
		jr.Epoch = rec.Epoch
		jr.Started = rec.At
		return nil
	case opCkpt:
		jr, ok := t.jobs[rec.Job]
		if !ok {
			if live {
				return fmt.Errorf("%w: %s", ErrUnknownJob, rec.Job)
			}
			return nil
		}
		if jr.Terminal != nil {
			if live {
				return fmt.Errorf("%w: %s", ErrTerminal, rec.Job)
			}
			t.fenced++
			return nil
		}
		if rec.Epoch != jr.Epoch {
			if live {
				return fmt.Errorf("%w: job %s epoch %d, have %d", ErrStaleEpoch, rec.Job, rec.Epoch, jr.Epoch)
			}
			t.fenced++
			return nil
		}
		jr.Ckpt = rec.Ckpt
		return nil
	case opTerm:
		jr, ok := t.jobs[rec.Job]
		if !ok {
			if live {
				return fmt.Errorf("%w: %s", ErrUnknownJob, rec.Job)
			}
			return nil
		}
		if jr.Terminal != nil {
			if live {
				return fmt.Errorf("%w: %s", ErrTerminal, rec.Job)
			}
			t.fenced++
			return nil
		}
		if rec.Epoch != jr.Epoch {
			if live {
				return fmt.Errorf("%w: job %s epoch %d, have %d", ErrStaleEpoch, rec.Job, rec.Epoch, jr.Epoch)
			}
			t.fenced++
			return nil
		}
		jr.Terminal = &Terminal{
			State: rec.State, Pointer: rec.Pointer, Err: rec.Err,
			Stats: rec.Ckpt, At: rec.At,
		}
		return nil
	default:
		if live {
			return fmt.Errorf("jobq: unknown record op %q", rec.Op)
		}
		return nil
	}
}

// Frame format: 4-byte little-endian payload length, 4-byte CRC-32C of
// the payload, then the payload. A frame whose length field exceeds the
// record bound, whose bytes run past the file, or whose CRC mismatches
// marks the torn tail: replay keeps everything before it.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame appends the framed record to buf.
func encodeFrame(buf []byte, rec *record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("jobq: encode record: %w", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// decodeFrames walks data, invoking fn per valid record, and returns the
// byte offset of the valid prefix plus whether a torn/corrupt tail was
// cut. maxRecord bounds a single payload (a garbage length field must
// not allocate gigabytes).
func decodeFrames(data []byte, maxRecord int, fn func(*record)) (valid int64, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return int64(off), false
		}
		if len(data)-off < frameHeader {
			return int64(off), true
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 0 || n > maxRecord || off+frameHeader+n > len(data) {
			return int64(off), true
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return int64(off), true
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A CRC-valid frame that fails to parse is corruption past
			// what a torn write explains; still cut the tail rather than
			// wedge — the frames before it are intact.
			return int64(off), true
		}
		fn(&rec)
		off += frameHeader + n
	}
}

// readAll drains a File (FS has no Stat; segments are bounded by
// compaction, so buffering one in memory is fine).
func readAll(f File) ([]byte, error) {
	return io.ReadAll(f)
}
