package jobq

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// ackLog records which journal operations returned success while the
// journal was still durable (not degraded). The crash-safety contract:
// every op acked while durable must survive a crash + clean reopen; ops
// acked after degradation are memory-only by design and must NOT be
// required (or allowed to half-appear as torn garbage that breaks the
// durable prefix).
type ackLog struct {
	admits map[string]bool
	epochs map[string]int64 // highest durably-acked lease epoch
	ckpts  map[string]int64 // Queries of latest durably-acked checkpoint
	terms  map[string]string
}

// script drives a fixed op sequence against j, recording durable acks.
// It exercises every record kind plus an explicit compaction.
func script(t *testing.T, j *Journal) *ackLog {
	t.Helper()
	acks := &ackLog{
		admits: make(map[string]bool),
		epochs: make(map[string]int64),
		ckpts:  make(map[string]int64),
		terms:  make(map[string]string),
	}
	durable := func() bool { return !j.Stats().Degraded }

	spec := json.RawMessage(`{"n":5}`)
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("j-%04d", i)
		if err := j.Admit(id, spec, time.Now().UTC()); err == nil && durable() {
			acks.admits[id] = true
		}
		ep, err := j.Lease(id)
		if err == nil && durable() {
			acks.epochs[id] = ep
		}
		if err == nil {
			q := int64(10 * i)
			if cerr := j.Checkpoint(id, ep, &Checkpoint{Accepted: int64(i), Queries: q}); cerr == nil && durable() {
				acks.ckpts[id] = q
			}
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact returned error (should degrade instead): %v", err)
	}
	// Post-compaction appends: a terminal and one more full job. The
	// j-0001 lease always succeeded (the table is live even degraded),
	// so its epoch is 1 regardless of durability.
	if err := j.Terminal("j-0001", 1, "completed", "j-0001.json", "", &Checkpoint{Accepted: 1, Queries: 10}); err == nil && durable() {
		acks.terms["j-0001"] = "completed"
	}
	if err := j.Admit("j-0004", spec, time.Now().UTC()); err == nil && durable() {
		acks.admits["j-0004"] = true
	}
	return acks
}

// verify reopens dir with the clean OS filesystem and checks the
// durable-ack invariants against the replayed table.
func verify(t *testing.T, dir string, acks *ackLog, label string) {
	t.Helper()
	j, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("%s: clean reopen failed: %v", label, err)
	}
	defer j.Close()
	for id := range acks.admits {
		if jobByID(rep, id) == nil {
			t.Errorf("%s: durably acked admit %s lost", label, id)
		}
	}
	for id, ep := range acks.epochs {
		jr := jobByID(rep, id)
		if jr == nil {
			t.Errorf("%s: leased job %s lost", label, id)
			continue
		}
		if jr.Epoch < ep {
			t.Errorf("%s: %s epoch %d < durably acked %d", label, id, jr.Epoch, ep)
		}
	}
	for id, q := range acks.ckpts {
		jr := jobByID(rep, id)
		if jr == nil || jr.Ckpt == nil {
			t.Errorf("%s: durably acked checkpoint on %s lost", label, id)
			continue
		}
		if jr.Ckpt.Queries < q {
			t.Errorf("%s: %s checkpoint queries %d < durably acked %d (bill regressed)",
				label, id, jr.Ckpt.Queries, q)
		}
	}
	for id, state := range acks.terms {
		jr := jobByID(rep, id)
		if jr == nil || jr.Terminal == nil || jr.Terminal.State != state {
			t.Errorf("%s: durably acked terminal %s=%s lost (got %+v)", label, id, state, jr)
		}
	}
}

// TestFaultSweep replays every injected failure point of the scripted
// commit + compaction sequence, for every fault kind, and asserts the
// acked-implies-durable contract after a simulated crash (reopen with
// the real filesystem).
func TestFaultSweep(t *testing.T) {
	kinds := []struct {
		name string
		kind FaultKind
	}{
		{"eio", FaultErr},
		{"enospc", FaultENOSPC},
		{"shortwrite", FaultShortWrite},
	}

	// First count the script's total mutating ops on a clean run.
	countDir := t.TempDir()
	counter := NewFaultFS(OSFS, -1, FaultErr)
	jc, _, err := Open(countDir, Options{FS: counter, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	script(t, jc)
	jc.Close()
	totalOps := counter.Ops()
	if totalOps < 10 {
		t.Fatalf("script only produced %d mutating ops; sweep would be vacuous", totalOps)
	}

	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			base := t.TempDir()
			for fail := int64(0); fail < totalOps; fail++ {
				dir := filepath.Join(base, fmt.Sprintf("f%03d", fail))
				ffs := NewFaultFS(OSFS, fail, k.kind)
				j, _, err := Open(dir, Options{FS: ffs, CompactEvery: -1})
				if err != nil {
					// Fault hit journal creation itself: nothing was acked,
					// nothing to verify.
					continue
				}
				acks := script(t, j)
				// Simulate SIGKILL: drop the handle without Close's final
				// sync (Close would mask an unsynced tail).
				label := fmt.Sprintf("%s failAt=%d", k.name, fail)
				verify(t, dir, acks, label)
				j.Close()
			}
		})
	}
}

// TestFaultShortWriteTornFrame pins the torn-frame path end to end: a
// short write mid-append leaves a partial frame on disk, the journal
// degrades, and reopen salvages the durable prefix with Torn reported.
func TestFaultShortWriteTornFrame(t *testing.T) {
	// Count Open's mutating ops so the fault lands exactly on the second
	// append's segment write (each fsynced append costs write + sync).
	probeDir := t.TempDir()
	probe := NewFaultFS(OSFS, -1, FaultShortWrite)
	jp, _, err := Open(probeDir, Options{FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	openOps := probe.Ops()
	jp.Close()

	dir := t.TempDir()
	ffs := NewFaultFS(OSFS, openOps+2, FaultShortWrite)
	j, _, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Admit("j-0001", nil, time.Now().UTC()); err != nil {
		t.Fatal(err)
	}
	if j.Stats().Degraded {
		t.Fatal("fault tripped too early: first admit should be durable")
	}
	if err := j.Admit("j-0002", nil, time.Now().UTC()); err != nil {
		t.Fatalf("short write must degrade, not fail the caller: %v", err)
	}
	if !j.Stats().Degraded {
		t.Fatal("short write did not degrade the journal")
	}
	j.Close()

	j2, rep := mustOpen(t, dir, Options{})
	defer j2.Close()
	if !rep.Torn {
		t.Fatal("half-written frame not reported as torn tail")
	}
	if jobByID(rep, "j-0001") == nil {
		t.Fatal("durable first admit lost after torn tail")
	}
	// The half-written frame must not replay as a phantom record.
	if jobByID(rep, "j-0002") != nil {
		t.Fatal("half-written admit replayed as a record")
	}
}
