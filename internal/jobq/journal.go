package jobq

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Options tunes a Journal.
type Options struct {
	// FS overrides the filesystem (fault injection in tests); nil uses
	// the real one.
	FS FS
	// NoSync skips the per-commit fsync. Tests only: it surrenders the
	// power-failure guarantee the journal exists for.
	NoSync bool
	// CompactEvery is the record count between automatic snapshot+
	// truncate compactions (default 4096; negative disables).
	CompactEvery int
	// MaxRecordBytes bounds one record payload (default 64 MiB); replay
	// treats a larger length field as the torn tail.
	MaxRecordBytes int
	// Logger receives degradation and replay warnings; nil uses
	// slog.Default.
	Logger *slog.Logger
}

func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// Stats is a point-in-time snapshot of the journal's counters.
type Stats struct {
	// Appends counts committed records, Fsyncs the data syncs backing
	// them (file and directory), Compactions the snapshot+truncate
	// cycles.
	Appends     int64 `json:"appends"`
	Fsyncs      int64 `json:"fsyncs"`
	Compactions int64 `json:"compactions"`
	// ReplayRecords counts records replayed at Open, ReplayFenced the
	// stale-epoch records replay dropped, TornTail whether replay cut a
	// torn frame off the end.
	ReplayRecords int64 `json:"replay_records"`
	ReplayFenced  int64 `json:"replay_fenced"`
	TornTail      bool  `json:"torn_tail"`
	// Degraded reports memory-only mode after a disk failure: the job
	// table keeps working, durability is gone, and the daemon must say
	// so loudly.
	Degraded bool `json:"degraded"`
	// SegmentBytes is the active segment's size, Seq its sequence
	// number, Jobs the table size.
	SegmentBytes int64  `json:"segment_bytes"`
	Seq          uint64 `json:"seq"`
	Jobs         int    `json:"jobs"`
}

// Replay is what Open rebuilt from disk.
type Replay struct {
	// Jobs lists every journaled job in admission order. Jobs with a nil
	// Terminal were queued or running at the crash; the owner requeues
	// them under a fresh lease.
	Jobs []*JobRecord
	// Records counts replayed log records (snapshot jobs excluded),
	// Fenced the stale-epoch records dropped, Torn whether a torn tail
	// was cut.
	Records int64
	Fenced  int64
	Torn    bool
}

// snapshot is the compaction checkpoint: the whole job table as of the
// start of segment Seq.
type snapshot struct {
	Seq     uint64       `json:"seq"`
	SavedAt time.Time    `json:"saved_at"`
	Jobs    []*JobRecord `json:"jobs"`
}

// Journal is a crash-safe, append-only job journal: records are CRC
// framed and fsynced before the append returns (commit = durable),
// replay tolerates a torn tail, compaction snapshots the job table and
// truncates the log, and lease epochs fence stale writers. On a disk
// failure it degrades to memory-only rather than failing its caller:
// the owner keeps running and surfaces Stats.Degraded.
//
// All methods are safe for concurrent use.
type Journal struct {
	dir  string
	fs   FS
	opts Options
	lg   *slog.Logger

	mu       sync.Mutex
	f        File
	seq      uint64
	segBytes int64
	recs     int // records since last compaction
	buf      []byte
	table    *table
	degraded bool
	closed   bool

	appends, fsyncs, compactions int64
	replayRecords, replayFenced  int64
	tornTail                     bool
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%016d.wal", seq) }

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d.json", seq) }

// Open replays dir (creating it if needed) and returns the journal plus
// what it rebuilt. A replay that salvages a torn tail succeeds with
// Replay.Torn set; unreadable snapshots and segments fail Open so the
// owner can degrade loudly instead of silently resurrecting a partial
// table.
func Open(dir string, opts Options) (*Journal, *Replay, error) {
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = 64 << 20
	}
	j := &Journal{
		dir:   dir,
		fs:    opts.FS,
		opts:  opts,
		lg:    opts.logger().With("component", "jobq", "dir", dir),
		table: newTable(),
	}
	if err := j.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobq: open %s: %w", dir, err)
	}
	rep, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	return j, rep, nil
}

// scan lists the directory's segment and snapshot sequence numbers.
func (j *Journal) scan() (segs, snaps []uint64, err error) {
	ents, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobq: scan %s: %w", j.dir, err)
	}
	for _, e := range ents {
		var seq uint64
		name := e.Name()
		if n, _ := fmt.Sscanf(name, "seg-%d.wal", &seq); n == 1 && name == segName(seq) {
			segs = append(segs, seq)
		}
		if n, _ := fmt.Sscanf(name, "snap-%d.json", &seq); n == 1 && name == snapName(seq) {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })
	return segs, snaps, nil
}

// replay rebuilds the table: newest readable snapshot, then every
// segment at or after it, in order, tolerating a torn tail. Stale files
// (left by a crash mid-compaction) are pruned.
func (j *Journal) replay() (*Replay, error) {
	segs, snaps, err := j.scan()
	if err != nil {
		return nil, err
	}

	// Adopt the newest parseable snapshot; fall back to older ones (a
	// crash can interleave with compaction's cleanup, but rename makes
	// each snapshot file all-or-nothing, so normally the newest parses).
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, err := j.readSnapshot(snaps[i])
		if err != nil {
			j.lg.Warn("unreadable snapshot skipped", "seq", snaps[i], "error", err)
			continue
		}
		j.table.load(snap.Jobs)
		base = snap.Seq
		break
	}

	// Replay segments from the snapshot forward. A torn frame ends
	// replay: append-only commit order means nothing after a tear can be
	// a record the journal acknowledged.
	rep := &Replay{}
	active := base
	if len(segs) > 0 && segs[len(segs)-1] > active {
		active = segs[len(segs)-1]
	}
	var tornSeq uint64
	var tornOff int64
	for _, seq := range segs {
		if seq < base {
			continue
		}
		data, err := j.readSegment(seq)
		if err != nil {
			return nil, err
		}
		valid, torn := decodeFrames(data, j.opts.MaxRecordBytes, func(rec *record) {
			_ = j.table.apply(rec, false)
			rep.Records++
		})
		if torn {
			rep.Torn = true
			tornSeq, tornOff = seq, valid
			j.lg.Warn("torn journal tail cut", "segment", segName(seq), "valid_bytes", valid, "total_bytes", len(data))
			break
		}
		if seq == active {
			j.segBytes = int64(len(data))
		}
	}
	rep.Fenced = j.table.fenced
	rep.Jobs = j.table.records()
	j.replayRecords = rep.Records
	j.replayFenced = rep.Fenced
	j.tornTail = rep.Torn

	// Make the torn segment the active one, physically truncated to its
	// valid prefix so new appends start on a clean frame boundary.
	j.seq = active
	if rep.Torn {
		j.seq = tornSeq
		if err := j.fs.Truncate(filepath.Join(j.dir, segName(tornSeq)), tornOff); err != nil {
			return nil, fmt.Errorf("jobq: truncate torn tail: %w", err)
		}
		j.segBytes = tornOff
	}
	if j.seq == 0 {
		j.seq = 1
	}

	// Prune what the replay no longer needs: segments and snapshots
	// older than the adopted base, segments past a torn tail, and
	// leftover temp files.
	for _, seq := range segs {
		if seq < base || (rep.Torn && seq > j.seq) {
			j.removeQuiet(segName(seq))
		}
	}
	for _, seq := range snaps {
		if seq != base {
			j.removeQuiet(snapName(seq))
		}
	}

	f, err := j.fs.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobq: open segment: %w", err)
	}
	j.f = f
	return rep, nil
}

func (j *Journal) readSnapshot(seq uint64) (*snapshot, error) {
	f, err := j.fs.OpenFile(filepath.Join(j.dir, snapName(seq)), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := readAll(f)
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	if snap.Seq != seq {
		return nil, fmt.Errorf("jobq: snapshot %d names seq %d", seq, snap.Seq)
	}
	return &snap, nil
}

func (j *Journal) readSegment(seq uint64) ([]byte, error) {
	f, err := j.fs.OpenFile(filepath.Join(j.dir, segName(seq)), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("jobq: read segment: %w", err)
	}
	defer f.Close()
	data, err := readAll(f)
	if err != nil {
		return nil, fmt.Errorf("jobq: read segment: %w", err)
	}
	return data, nil
}

func (j *Journal) removeQuiet(name string) {
	if err := j.fs.Remove(filepath.Join(j.dir, name)); err != nil && !os.IsNotExist(err) {
		j.lg.Warn("stale journal file not removed", "name", name, "error", err)
	}
}

// syncDir fsyncs the journal directory so renames and creates are
// durable, not just the file contents.
func (j *Journal) syncDir() error {
	d, err := j.fs.OpenFile(j.dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return err
	}
	j.fsyncs++
	return nil
}

// degrade flips the journal to memory-only mode, once, loudly.
func (j *Journal) degradeLocked(what string, err error) {
	if j.degraded {
		return
	}
	j.degraded = true
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	j.lg.Error("journal degraded to memory-only: durability lost until restart",
		"op", what, "error", err)
}

// append commits one record: apply to the table (fencing first — a
// stale-epoch writer is rejected before anything reaches disk), frame,
// write, fsync. Disk failures degrade the journal instead of failing
// the caller; fencing and lifecycle errors always surface.
func (j *Journal) append(rec *record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.table.apply(rec, true); err != nil {
		return err
	}
	if j.degraded {
		return nil
	}
	buf, err := encodeFrame(j.buf[:0], rec)
	if err != nil {
		// A record the journal cannot encode is a programming error; the
		// table already applied it, so stay consistent and degrade.
		j.degradeLocked("encode", err)
		return nil
	}
	j.buf = buf
	if _, err := j.f.Write(buf); err != nil {
		j.degradeLocked("append", err)
		return nil
	}
	j.appends++
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			j.degradeLocked("fsync", err)
			return nil
		}
		j.fsyncs++
	}
	j.segBytes += int64(len(buf))
	j.recs++
	if j.opts.CompactEvery > 0 && j.recs >= j.opts.CompactEvery {
		if err := j.compactLocked(); err != nil {
			j.degradeLocked("compact", err)
		}
	}
	return nil
}

// Admit journals a job admission: call before acknowledging the
// submission, so an admitted job can never be lost.
func (j *Journal) Admit(id string, spec json.RawMessage, created time.Time) error {
	return j.append(&record{Op: opAdmit, Job: id, Spec: spec, At: created})
}

// Lease grants the job's next run epoch and journals it. The returned
// epoch fences every earlier one: a zombie writer holding a stale epoch
// gets ErrStaleEpoch instead of corrupting the resumed job's state.
func (j *Journal) Lease(id string) (int64, error) {
	j.mu.Lock()
	jr, ok := j.table.jobs[id]
	var next int64
	if ok {
		next = jr.Epoch + 1
	}
	j.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if err := j.append(&record{Op: opLease, Job: id, Epoch: next, At: time.Now().UTC()}); err != nil {
		return 0, err
	}
	return next, nil
}

// Checkpoint journals a mid-run progress checkpoint under the given
// lease epoch.
func (j *Journal) Checkpoint(id string, epoch int64, ck *Checkpoint) error {
	return j.append(&record{Op: opCkpt, Job: id, Epoch: epoch, Ckpt: ck, At: time.Now().UTC()})
}

// Terminal journals the job's terminal transition: state name, the
// on-disk sample-set pointer, the error message, and final stats (the
// samples payload, if any, lives behind the pointer, not in the log).
func (j *Journal) Terminal(id string, epoch int64, state, pointer, errMsg string, stats *Checkpoint) error {
	if stats != nil {
		st := *stats
		st.Samples = nil
		st.Bills = nil
		stats = &st
	}
	return j.append(&record{
		Op: opTerm, Job: id, Epoch: epoch, State: state,
		Pointer: pointer, Err: errMsg, Ckpt: stats, At: time.Now().UTC(),
	})
}

// Compact snapshots the job table and truncates the log: write
// snap-(seq+1) (temp + rename + dir fsync), switch appends to a fresh
// seg-(seq+1), then prune the old pair. A crash at any point leaves
// either the old pair or the new pair (or both) intact — replay prefers
// the newest readable snapshot.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.degraded {
		return nil
	}
	if err := j.compactLocked(); err != nil {
		j.degradeLocked("compact", err)
	}
	return nil
}

func (j *Journal) compactLocked() error {
	next := j.seq + 1
	snap := snapshot{Seq: next, SavedAt: time.Now().UTC(), Jobs: j.table.records()}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}

	snapPath := filepath.Join(j.dir, snapName(next))
	tmpPath := snapPath + ".tmp"
	tf, err := j.fs.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot temp: %w", err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		j.removeQuiet(filepath.Base(tmpPath))
		return fmt.Errorf("snapshot write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		j.removeQuiet(filepath.Base(tmpPath))
		return fmt.Errorf("snapshot fsync: %w", err)
	}
	j.fsyncs++
	if err := tf.Close(); err != nil {
		j.removeQuiet(filepath.Base(tmpPath))
		return fmt.Errorf("snapshot close: %w", err)
	}
	if err := j.fs.Rename(tmpPath, snapPath); err != nil {
		j.removeQuiet(filepath.Base(tmpPath))
		return fmt.Errorf("snapshot rename: %w", err)
	}
	if err := j.syncDir(); err != nil {
		return fmt.Errorf("snapshot dir fsync: %w", err)
	}

	nf, err := j.fs.OpenFile(filepath.Join(j.dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("new segment: %w", err)
	}
	if err := j.syncDir(); err != nil {
		nf.Close()
		return fmt.Errorf("segment dir fsync: %w", err)
	}
	old := j.seq
	if j.f != nil {
		_ = j.f.Close()
	}
	j.f = nf
	j.seq = next
	j.segBytes = 0
	j.recs = 0
	j.compactions++

	// Prune the superseded pair. Failure here is harmless — replay
	// prefers the newest snapshot and Open prunes strays — so warn, not
	// degrade.
	j.removeQuiet(segName(old))
	j.removeQuiet(snapName(old))
	return nil
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:       j.appends,
		Fsyncs:        j.fsyncs,
		Compactions:   j.compactions,
		ReplayRecords: j.replayRecords,
		ReplayFenced:  j.replayFenced,
		TornTail:      j.tornTail,
		Degraded:      j.degraded,
		SegmentBytes:  j.segBytes,
		Seq:           j.seq,
		Jobs:          len(j.table.jobs),
	}
}

// Close flushes and closes the journal. Further appends return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	//hdlint:ignore lockorder j.f is a segment File (os.File or a fault wrapper), never a Journal — this interface Close cannot reenter mu
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
