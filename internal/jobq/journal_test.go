package jobq

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, rep
}

func admit(t *testing.T, j *Journal, id string) {
	t.Helper()
	spec := json.RawMessage(`{"url":"http://x","n":10}`)
	if err := j.Admit(id, spec, time.Now().UTC()); err != nil {
		t.Fatalf("Admit(%s): %v", id, err)
	}
}

func lease(t *testing.T, j *Journal, id string) int64 {
	t.Helper()
	ep, err := j.Lease(id)
	if err != nil {
		t.Fatalf("Lease(%s): %v", id, err)
	}
	return ep
}

func jobByID(rep *Replay, id string) *JobRecord {
	for _, jr := range rep.Jobs {
		if jr.ID == id {
			return jr
		}
	}
	return nil
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := mustOpen(t, dir, Options{})
	if len(rep.Jobs) != 0 || rep.Records != 0 {
		t.Fatalf("fresh journal replayed %d jobs, %d records", len(rep.Jobs), rep.Records)
	}

	admit(t, j, "j-0001")
	ep := lease(t, j, "j-0001")
	if ep != 1 {
		t.Fatalf("first lease epoch = %d, want 1", ep)
	}
	ck := &Checkpoint{Accepted: 3, Candidates: 5, Rejected: 2, Queries: 40,
		Bills: []int64{10, 12, 18}, Samples: json.RawMessage(`{"n":3}`)}
	if err := j.Checkpoint("j-0001", ep, ck); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	admit(t, j, "j-0002")
	if err := j.Terminal("j-0002", 0, "canceled", "", "killed", nil); err != nil {
		t.Fatalf("Terminal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rep2 := mustOpen(t, dir, Options{})
	defer j2.Close()
	if rep2.Records != 5 {
		t.Fatalf("replayed %d records, want 5", rep2.Records)
	}
	if rep2.Torn {
		t.Fatal("clean journal replayed as torn")
	}
	if len(rep2.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rep2.Jobs))
	}
	j1 := jobByID(rep2, "j-0001")
	if j1 == nil || j1.Terminal != nil || j1.Epoch != 1 {
		t.Fatalf("j-0001 = %+v, want interrupted epoch-1 job", j1)
	}
	if j1.Ckpt == nil || j1.Ckpt.Accepted != 3 || j1.Ckpt.Queries != 40 {
		t.Fatalf("j-0001 checkpoint = %+v", j1.Ckpt)
	}
	if string(j1.Ckpt.Samples) != `{"n":3}` || len(j1.Ckpt.Bills) != 3 {
		t.Fatalf("checkpoint payload lost: %+v", j1.Ckpt)
	}
	j2r := jobByID(rep2, "j-0002")
	if j2r == nil || j2r.Terminal == nil {
		t.Fatalf("j-0002 = %+v, want terminal", j2r)
	}
	if j2r.Terminal.State != "canceled" || j2r.Terminal.Err != "killed" {
		t.Fatalf("j-0002 terminal = %+v", j2r.Terminal)
	}
	// Replay preserves admission order.
	if rep2.Jobs[0].ID != "j-0001" || rep2.Jobs[1].ID != "j-0002" {
		t.Fatalf("admission order lost: %s, %s", rep2.Jobs[0].ID, rep2.Jobs[1].ID)
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	admit(t, j, "j-0001")
	ep := lease(t, j, "j-0001")
	if err := j.Checkpoint("j-0001", ep, &Checkpoint{Accepted: 1, Queries: 7}); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	j.Close()

	// Simulate the crash mid-append: garbage half-frame at the tail.
	seg := filepath.Join(dir, segName(st.Seq))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rep := mustOpen(t, dir, Options{})
	if !rep.Torn {
		t.Fatal("torn tail not reported")
	}
	if rep.Records != 3 {
		t.Fatalf("replayed %d records, want 3", rep.Records)
	}
	jr := jobByID(rep, "j-0001")
	if jr == nil || jr.Ckpt == nil || jr.Ckpt.Queries != 7 {
		t.Fatalf("valid prefix lost: %+v", jr)
	}
	// The tail was physically truncated: new appends land on a clean
	// frame boundary and a third open replays everything.
	if err := j2.Terminal("j-0001", jr.Epoch, "completed", "x.json", "", nil); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, rep3 := mustOpen(t, dir, Options{})
	defer j3.Close()
	if rep3.Torn {
		t.Fatal("tail still torn after truncation")
	}
	jr3 := jobByID(rep3, "j-0001")
	if jr3 == nil || jr3.Terminal == nil || jr3.Terminal.State != "completed" {
		t.Fatalf("post-truncation append lost: %+v", jr3)
	}
}

func TestJournalCorruptMidFrame(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	admit(t, j, "j-0001")
	admit(t, j, "j-0002")
	st := j.Stats()
	j.Close()

	// Flip one payload byte of the second record: CRC catches it and
	// replay keeps the intact prefix.
	seg := filepath.Join(dir, segName(st.Seq))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep := mustOpen(t, dir, Options{})
	defer j2.Close()
	if !rep.Torn || rep.Records != 1 {
		t.Fatalf("torn=%v records=%d, want torn prefix of 1", rep.Torn, rep.Records)
	}
	if jobByID(rep, "j-0001") == nil {
		t.Fatal("intact first record lost")
	}
}

func TestJournalEpochFencing(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	defer j.Close()
	admit(t, j, "j-0001")
	ep1 := lease(t, j, "j-0001")
	ep2 := lease(t, j, "j-0001") // requeue: new epoch supersedes
	if ep2 != ep1+1 {
		t.Fatalf("re-lease epoch = %d, want %d", ep2, ep1+1)
	}

	// The zombie writer (old epoch) is fenced on both record kinds.
	err := j.Checkpoint("j-0001", ep1, &Checkpoint{Accepted: 99})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale checkpoint error = %v, want ErrStaleEpoch", err)
	}
	err = j.Terminal("j-0001", ep1, "completed", "", "", nil)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale terminal error = %v, want ErrStaleEpoch", err)
	}

	// The live epoch still writes.
	if err := j.Checkpoint("j-0001", ep2, &Checkpoint{Accepted: 4}); err != nil {
		t.Fatalf("live checkpoint: %v", err)
	}
	// Checkpoints and leases after the terminal transition are rejected.
	if err := j.Terminal("j-0001", ep2, "completed", "", "", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint("j-0001", ep2, &Checkpoint{}); !errors.Is(err, ErrTerminal) {
		t.Fatalf("post-terminal checkpoint error = %v, want ErrTerminal", err)
	}
	if _, err := j.Lease("j-0001"); !errors.Is(err, ErrTerminal) {
		t.Fatalf("post-terminal lease error = %v, want ErrTerminal", err)
	}
}

func TestJournalLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	admit(t, j, "j-0001")
	if err := j.Admit("j-0001", nil, time.Now()); !errors.Is(err, ErrExists) {
		t.Fatalf("dup admit error = %v, want ErrExists", err)
	}
	if _, err := j.Lease("j-9999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown lease error = %v, want ErrUnknownJob", err)
	}
	j.Close()
	if err := j.Admit("j-0002", nil, time.Now()); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close error = %v, want ErrClosed", err)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{CompactEvery: 5})
	for i := 0; i < 4; i++ {
		id := []string{"j-0001", "j-0002", "j-0003", "j-0004"}[i]
		admit(t, j, id)
		ep := lease(t, j, id)
		if err := j.Checkpoint(id, ep, &Checkpoint{Accepted: int64(i), Queries: int64(10 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Compactions < 2 {
		t.Fatalf("compactions = %d, want >= 2 at CompactEvery=5 over 12 records", st.Compactions)
	}
	j.Close()

	// Post-compaction dir holds exactly one snapshot + one segment.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, snaps int
	for _, e := range ents {
		switch filepath.Ext(e.Name()) {
		case ".wal":
			segs++
		case ".json":
			snaps++
		}
	}
	if segs != 1 || snaps != 1 {
		t.Fatalf("after compaction: %d segments, %d snapshots, want 1+1", segs, snaps)
	}

	j2, rep := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(rep.Jobs) != 4 {
		t.Fatalf("replayed %d jobs, want 4", len(rep.Jobs))
	}
	for i, id := range []string{"j-0001", "j-0002", "j-0003", "j-0004"} {
		jr := jobByID(rep, id)
		if jr == nil || jr.Epoch != 1 || jr.Ckpt == nil || jr.Ckpt.Queries != int64(10*i) {
			t.Fatalf("%s replayed wrong: %+v", id, jr)
		}
		if rep.Jobs[i].ID != id {
			t.Fatalf("admission order lost at %d: %s", i, rep.Jobs[i].ID)
		}
	}
}

func TestJournalCrashMidCompaction(t *testing.T) {
	// Sweep a disk fault across every mutating op of the compaction
	// protocol; after each injected crash, reopen with the real FS and
	// assert the pre-compaction state survived intact.
	base := t.TempDir()
	populate := func(dir string) {
		t.Helper()
		j, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		admit(t, j, "j-0001")
		ep := lease(t, j, "j-0001")
		if err := j.Checkpoint("j-0001", ep, &Checkpoint{Accepted: 2, Queries: 20}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}

	for fail := int64(0); ; fail++ {
		dir := filepath.Join(base, fmt.Sprintf("run-%03d", fail))
		populate(dir)

		// Reopen through a FaultFS; Open's own mutating ops (mkdir,
		// segment open) run before the compaction script, so skip them.
		probe := NewFaultFS(OSFS, -1, FaultErr)
		jp, _, err := Open(dir, Options{FS: probe})
		if err != nil {
			t.Fatal(err)
		}
		openOps := probe.Ops()
		jp.Close()

		ffs := NewFaultFS(OSFS, openOps+fail, FaultErr)
		j2, _, err := Open(dir, Options{FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		_ = j2.Compact()
		tripped := ffs.Tripped()
		j2.Close()

		j3, rep, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("failAt=%d: reopen after mid-compaction crash: %v", fail, err)
		}
		jr := jobByID(rep, "j-0001")
		if jr == nil || jr.Epoch != 1 || jr.Ckpt == nil || jr.Ckpt.Queries != 20 {
			t.Fatalf("failAt=%d: state lost across mid-compaction crash: %+v", fail, jr)
		}
		j3.Close()
		if !tripped {
			// The whole compaction ran clean: every failure point covered.
			break
		}
	}
}

func TestJournalDegradedMode(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	admit(t, j, "j-0001")
	j.Close()

	// Count Open's own mutating ops so the fault lands on the first
	// append's disk write (not its fsync — a write that lands before a
	// failed fsync is legitimately visible after reopen): the journal
	// must degrade, keep serving the table memory-only, and still fence
	// stale epochs.
	probe := NewFaultFS(OSFS, -1, FaultENOSPC)
	jp, _, err := Open(dir, Options{FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	openOps := probe.Ops()
	jp.Close()

	j2, _, err := Open(dir, Options{FS: NewFaultFS(OSFS, openOps, FaultENOSPC)})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Admit("j-0002", nil, time.Now().UTC()); err != nil {
		t.Fatalf("degraded admit should not fail the caller: %v", err)
	}
	if !j2.Stats().Degraded {
		t.Fatal("journal not degraded after injected disk failure")
	}
	ep, err := j2.Lease("j-0002")
	if err != nil || ep != 1 {
		t.Fatalf("degraded lease = %d, %v", ep, err)
	}
	if _, err := j2.Lease("j-0002"); err != nil {
		t.Fatal(err)
	}
	if err := j2.Checkpoint("j-0002", ep, &Checkpoint{}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("degraded journal dropped fencing: %v", err)
	}
	// A degraded journal never acked j-0002 to disk: a clean reopen sees
	// only the durable prefix.
	j2.Close()
	j3, rep := mustOpen(t, dir, Options{})
	defer j3.Close()
	if jobByID(rep, "j-0002") != nil {
		t.Fatal("memory-only record leaked to disk")
	}
	if jobByID(rep, "j-0001") == nil {
		t.Fatal("durable record lost")
	}
}

func TestJournalNoSyncOption(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	admit(t, j, "j-0001")
	st := j.Stats()
	if st.Appends != 1 {
		t.Fatalf("appends = %d, want 1", st.Appends)
	}
	if st.Fsyncs != 0 {
		t.Fatalf("NoSync journal fsynced %d times", st.Fsyncs)
	}
	j.Close()
}
