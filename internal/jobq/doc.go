// Package jobq is the crash-safe durability layer under the job
// service: an append-only, fsync-on-commit job journal with lease/epoch
// fencing, built so a SIGKILLed daemon loses no admitted job, no
// journaled progress, and no query budget already spent against a
// per-host politeness allowance.
//
// # Record format
//
// The journal is a log of JSON records, each wrapped in an 8-byte frame:
// a 4-byte little-endian payload length and a 4-byte CRC-32C of the
// payload. Four ops rebuild the job table:
//
//   - admit — a job was accepted (opaque spec; logged before the
//     submission is acknowledged, so an acked job is always durable)
//   - lease — a run started; carries the new epoch (see below)
//   - ckpt  — a mid-run progress checkpoint: cumulative stats (the
//     monotone query bill), per-candidate query bills, and the opaque
//     accepted-sample payload
//   - term  — the terminal transition: state, the on-disk sample-set
//     checkpoint pointer, the error message, final stats
//
// Every append is applied to the in-memory table first (fencing — see
// below — rejects bad writers before anything reaches disk), then
// framed, written, and fsynced; only then does the append return. A
// record on disk is therefore a record that was acknowledged, and replay
// order equals commit order.
//
// # Torn-tail-tolerant replay
//
// Open replays the newest readable snapshot plus every later segment.
// A frame whose length overruns the file, whose CRC mismatches, or
// whose payload fails to parse marks the torn tail — the partial write
// of the append that was in flight when the process died. Replay keeps
// everything before it, truncates the segment to the valid prefix, and
// reports Replay.Torn. Nothing after a tear can be an acknowledged
// record, so cutting it loses no committed state.
//
// # Leases and epoch fencing
//
// Each run of a job holds a lease with an epoch: 0 before the first
// run, bumped by one on every Lease call (the initial start and each
// post-crash requeue). Checkpoint and terminal appends carry the
// writer's epoch and are rejected with ErrStaleEpoch when it is not the
// job's current epoch — so a zombie worker's late flush can never
// corrupt the state of a job that was requeued and resumed under a new
// lease. The same check runs during replay (defensively, counted in
// Replay.Fenced). The epoch scheme is deliberately node-agnostic: a
// coordinator handing leases to remote workers can adopt it unchanged.
//
// # Compaction
//
// Compact (automatic every Options.CompactEvery records) writes the
// whole job table as snap-<seq+1>.json (temp file + fsync + rename +
// directory fsync), switches appends to a fresh seg-<seq+1>.wal, and
// prunes the superseded pair. A crash at any point leaves the old pair,
// the new pair, or both — replay adopts the newest readable snapshot
// and ignores strays, so compaction is crash-atomic end to end.
//
// # Degradation policy
//
// A disk failure (write, fsync, compaction) flips the journal to
// memory-only mode instead of failing the daemon's jobs: appends keep
// updating the table and return nil, Stats.Degraded turns true, and one
// loud error is logged. The owner surfaces the flag on /healthz and
// /metrics; durability is gone until restart, job execution is not.
// Fencing errors are correctness signals, not disk failures, and always
// surface.
//
// The FS indirection exists so tests can inject deterministic disk
// faults (short writes, fsync errors, ENOSPC) at every operation index
// and replay each failure point — internal/faultform's philosophy
// applied to disk.
package jobq
