package jobsvc

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/hiddendb"
)

// TestJobSurvivesChaosProfile runs a job through a manager in chaos mode
// (the "hostile" faultform preset below the shared execution layer) and
// asserts the job still delivers every requested sample, with the
// injected misbehaviour visible on /metrics — the daemon-level version of
// the scenario matrix's liveness guarantee.
func TestJobSurvivesChaosProfile(t *testing.T) {
	_, srv := newTarget(t, 400, 50, hiddendb.CountNone)
	m := newTestManager(t, srv, Config{
		FaultProfile: "hostile",
		FaultSeed:    17,
	})
	v, err := m.Submit(Spec{URL: srv.URL, Connector: ConnectorAPI, N: 40, Workers: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 30*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCompleted {
		t.Fatalf("job state %s (err=%q), want completed despite chaos", v.State, v.Error)
	}
	if v.Accepted != 40 {
		t.Fatalf("accepted %d of 40 samples — chaos lost samples", v.Accepted)
	}

	hosts := m.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("hosts = %d, want 1", len(hosts))
	}
	if hosts[0].Faults.Total() == 0 {
		t.Fatal("chaos profile injected nothing — the wrapper is not in the stack")
	}

	rr := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	NewHandler(m).ServeHTTP(rr, req)
	body, _ := io.ReadAll(rr.Result().Body)
	for _, metric := range []string{
		"hdsamplerd_host_faults_injected_total",
		"hdsamplerd_host_exec_transient_retries_total",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
}

// TestUnknownFaultProfileDisablesInjection: the manager degrades to no
// injection rather than failing jobs on a typo (the daemon validates the
// flag up front; this is the library-level safety net).
func TestUnknownFaultProfileDisablesInjection(t *testing.T) {
	_, srv := newTarget(t, 200, 50, hiddendb.CountNone)
	m := newTestManager(t, srv, Config{FaultProfile: "typo"})
	v, err := m.Submit(Spec{URL: srv.URL, N: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 20*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCompleted {
		t.Fatalf("job state %s (err=%q)", v.State, v.Error)
	}
	if got := m.Hosts()[0].Faults.Total(); got != 0 {
		t.Fatalf("unknown profile injected %d faults", got)
	}
}
