package jobsvc

import (
	"hdsampler/internal/faultform"
	"hdsampler/internal/telemetry"
)

// registerMetrics wires every service metric into the manager's telemetry
// registry: the families the legacy hand-rolled /metrics writer emitted
// (names and help strings preserved so dashboards keep working), the new
// latency histograms, and the tracing/slow-walk counters. Job and host
// values are computed at scrape time from the live job table, matching the
// old writer's semantics.
func (m *Manager) registerMetrics() {
	r := m.reg
	r.CollectGauge("hdsamplerd_jobs", "Jobs by lifecycle state.", func(emit telemetry.Emit) {
		byState := map[State]int{
			StateQueued: 0, StateRunning: 0,
			StateCompleted: 0, StateFailed: 0, StateCanceled: 0,
		}
		for _, v := range m.Jobs() {
			byState[v.State]++
		}
		for s, n := range byState {
			emit(float64(n), telemetry.Label{Name: "state", Value: string(s)})
		}
	})
	r.CounterFunc("hdsamplerd_samples_accepted_total", "Accepted samples across all jobs.", func() float64 {
		var accepted int64
		for _, v := range m.Jobs() {
			accepted += v.Accepted
		}
		return float64(accepted)
	})
	r.CounterFunc("hdsamplerd_queries_total", "Interface queries issued by samplers across all jobs.", func() float64 {
		var queries int64
		for _, v := range m.Jobs() {
			queries += v.Queries
		}
		return float64(queries)
	})
	r.CounterFunc("hdsamplerd_queries_saved_total", "Queries answered by shared history caches instead of the interface.", func() float64 {
		// Savings come from the host caches, not from summing per-job
		// views: concurrent jobs on one cache observe overlapping windows,
		// and the sum would overcount.
		var saved int64
		for _, h := range m.Hosts() {
			saved += h.Saved()
		}
		return float64(saved)
	})

	perHost := func(name, help string, counter bool, value func(HostStats) float64) {
		fn := func(emit telemetry.Emit) {
			for _, h := range m.Hosts() {
				emit(value(h), telemetry.Label{Name: "host", Value: h.Host})
			}
		}
		if counter {
			r.CollectCounter(name, help, fn)
		} else {
			r.CollectGauge(name, help, fn)
		}
	}
	perHost("hdsamplerd_host_cache_issued_total", "Real queries forwarded to each host.", true,
		func(h HostStats) float64 { return float64(h.Issued) })
	perHost("hdsamplerd_host_cache_saved_total", "Queries each host's shared cache answered (exact hits + inference).", true,
		func(h HostStats) float64 { return float64(h.Saved()) })
	perHost("hdsamplerd_host_cache_entries", "Resident entries in each host's shared history caches.", false,
		func(h HostStats) float64 { return float64(h.Entries) })
	perHost("hdsamplerd_host_cache_protected_entries", "Pinned fully-specified overflow entries (never evicted).", false,
		func(h HostStats) float64 { return float64(h.Protected) })
	perHost("hdsamplerd_host_cache_evictions_total", "Entries reclaimed by each host cache's CLOCK eviction.", true,
		func(h HostStats) float64 { return float64(h.Evictions) })
	perHost("hdsamplerd_host_cache_shard_balance_cv", "Coefficient of variation of per-shard entry counts (0 = perfectly balanced).", false,
		func(h HostStats) float64 { return h.ShardBalance.CV })
	perHost("hdsamplerd_host_throttled_total", "Queries delayed by the per-host politeness budget.", true,
		func(h HostStats) float64 { return float64(h.Throttled) })
	perHost("hdsamplerd_host_exec_coalesced_total", "Queries answered by joining an identical in-flight query.", true,
		func(h HostStats) float64 { return float64(h.Coalesced) })
	perHost("hdsamplerd_host_exec_batched_total", "Queries shipped inside shared batch wire requests.", true,
		func(h HostStats) float64 { return float64(h.Batched) })
	perHost("hdsamplerd_host_exec_batch_requests_total", "Batch wire requests issued (each carries several queries under one rate-limit charge).", true,
		func(h HostStats) float64 { return float64(h.BatchRequests) })
	perHost("hdsamplerd_host_exec_wire_calls_total", "Wire executions (single-query requests plus batch requests).", true,
		func(h HostStats) float64 { return float64(h.WireCalls) })
	perHost("hdsamplerd_host_exec_in_flight", "Wire requests currently running against each host.", false,
		func(h HostStats) float64 { return float64(h.InFlight) })
	perHost("hdsamplerd_host_exec_concurrency_limit", "Current AIMD concurrency window per host (0 = unlimited).", false,
		func(h HostStats) float64 { return h.Limit })
	perHost("hdsamplerd_host_exec_backoffs_total", "Multiplicative window cuts after 429 pushback.", true,
		func(h HostStats) float64 { return float64(h.Backoffs) })
	perHost("hdsamplerd_host_exec_transient_retries_total", "Wire executions repeated after transient interface faults (5xx blips, timeouts).", true,
		func(h HostStats) float64 { return float64(h.TransientRetries) })

	r.CollectCounter("hdsamplerd_host_faults_injected_total",
		"Misbehaviour injected by the configured fault profile, by kind (zero without -fault-profile).",
		func(emit telemetry.Emit) {
			for _, h := range m.Hosts() {
				host := telemetry.Label{Name: "host", Value: h.Host}
				for _, kv := range faultKinds(h.Faults) {
					emit(float64(kv.n), host, telemetry.Label{Name: "kind", Value: kv.kind})
				}
			}
		})

	// Job-journal durability counters. journal_degraded is the loud flag:
	// 1 means configured durability is not protecting jobs right now
	// (disk failure mid-run, or the journal never opened).
	r.CounterFunc("hdsamplerd_journal_appends_total", "Records committed (written + fsynced) to the job journal.", func() float64 {
		return float64(m.JournalStats().Appends)
	})
	r.CounterFunc("hdsamplerd_journal_fsyncs_total", "fsync calls issued by the job journal (segment and directory).", func() float64 {
		return float64(m.JournalStats().Fsyncs)
	})
	r.CounterFunc("hdsamplerd_journal_compactions_total", "Snapshot+truncate compactions of the job journal.", func() float64 {
		return float64(m.JournalStats().Compactions)
	})
	r.GaugeFunc("hdsamplerd_journal_replay_records", "Records replayed from the journal at the last daemon start.", func() float64 {
		return float64(m.JournalStats().ReplayRecords)
	})
	r.GaugeFunc("hdsamplerd_journal_segment_bytes", "Active journal segment size.", func() float64 {
		return float64(m.JournalStats().SegmentBytes)
	})
	r.GaugeFunc("hdsamplerd_journal_degraded", "1 when durability is configured but not working (journal degraded to memory-only or unavailable).", func() float64 {
		h := m.Health()
		if h.Journal == "degraded" || h.Journal == "unavailable" {
			return 1
		}
		return 0
	})

	// Telemetry instruments: latency histograms plus tracing and slow-walk
	// counters (the new observability surface).
	m.wireHist = r.HistogramVec("hdsamplerd_host_wire_rtt_seconds",
		"Wire round-trip latency of real interface requests, per host.", "host")
	m.execHist = r.HistogramVec("hdsamplerd_host_exec_latency_seconds",
		"Execution-layer latency per query (coalesced and batched waits included), per host.", "host")
	m.cacheHist = r.HistogramVec("hdsamplerd_host_cache_lookup_seconds",
		"History-cache lookup latency on traced walks, per host.", "host")
	m.walkHist = r.HistogramVec("hdsamplerd_walk_duration_seconds",
		"Whole candidate-draw duration (all restarts of one draw), per job.", "job")
	m.slowWalks = r.Counter("hdsamplerd_slow_walks_total",
		"Candidate draws exceeding the slow-walk latency or query-budget threshold.")
	r.CounterFunc("hdsamplerd_traces_started_total", "Walks sampled into end-to-end tracing.", func() float64 {
		return float64(m.tracer.Stats().Started)
	})
	r.CounterFunc("hdsamplerd_traces_evicted_total", "Finished traces displaced from the ring buffer.", func() float64 {
		return float64(m.tracer.Stats().Evicted)
	})
	r.GaugeFunc("hdsamplerd_traces_buffered", "Finished traces currently held in the ring buffer.", func() float64 {
		return float64(m.tracer.Stats().Buffered)
	})
}

// faultKinds flattens fault-injection stats into (kind, count) pairs in
// the exposition's historical order.
func faultKinds(f faultform.Stats) []struct {
	kind string
	n    int64
} {
	return []struct {
		kind string
		n    int64
	}{
		{"rate_limited", f.RateLimited},
		{"exhausted_429s", f.Exhausted429s},
		{"transient", f.Transients},
		{"jittered", f.Jittered},
		{"reordered", f.Reordered},
		{"rounded_counts", f.RoundedCounts},
		{"slow_calls", f.SlowCalls},
	}
}
