package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/jobq"
	"hdsampler/internal/store"
)

// craftCrashedJournal writes the journal state a SIGKILLed daemon leaves
// behind: a queued job (admitted, never leased), a running job (leased,
// no checkpoint yet), and a mid-run job with a progress checkpoint
// carrying real accepted samples and a spent query bill.
func craftCrashedJournal(t *testing.T, dir string, spec Spec, base *store.SampleSet, baseQueries int64) {
	t.Helper()
	j, _, err := jobq.Open(dir, jobq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	admit := func(id string) {
		t.Helper()
		if err := j.Admit(id, specJSON, time.Now().UTC()); err != nil {
			t.Fatal(err)
		}
	}
	admit("j-0002") // queued at the crash
	admit("j-0003") // running at the crash, no checkpoint yet
	if _, err := j.Lease("j-0003"); err != nil {
		t.Fatal(err)
	}
	admit("j-0004") // running with journaled progress
	ep, err := j.Lease("j-0004")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := base.Write(&buf); err != nil {
		t.Fatal(err)
	}
	nBase, _, err := base.DecodeSamples()
	if err != nil {
		t.Fatal(err)
	}
	ck := &jobq.Checkpoint{
		Accepted:   int64(len(nBase)),
		Candidates: int64(len(nBase)) + 3,
		Rejected:   3,
		Queries:    baseQueries,
		Bills:      make([]int64, len(nBase)),
		Samples:    buf.Bytes(),
	}
	if err := j.Checkpoint("j-0004", ep, ck); err != nil {
		t.Fatal(err)
	}
}

// TestRestartReplaysJournal is the satellite end-to-end restart test:
// manager A completes a job and shuts down; a crashed-state journal is
// crafted on top; manager B over the same directories must (a) list the
// terminal job with its stats and lazily serve its samples, (b) requeue
// and complete the interrupted jobs with exact sample counts and a
// monotone query bill, and (c) compose journal replay with the history
// cache warm start.
func TestRestartReplaysJournal(t *testing.T) {
	db, srv := newTarget(t, 400, 50, hiddendb.CountNone)
	journalDir := t.TempDir()
	dataDir := t.TempDir()
	histDir := t.TempDir()
	cfg := Config{
		DataDir:         dataDir,
		HistoryDir:      histDir,
		JournalDir:      journalDir,
		CheckpointEvery: 50 * time.Millisecond,
		Client:          srv.Client(),
	}
	spec := Spec{URL: srv.URL, N: 10, Workers: 2, Seed: 11}

	// Phase 1: a normal life — submit, complete, graceful shutdown.
	a := NewManager(cfg)
	v, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j-0001" {
		t.Fatalf("first job id = %s", v.ID)
	}
	done := waitJob(t, a, v.ID, 30*time.Second, func(v View) bool { return v.State.Terminal() })
	if done.State != StateCompleted || done.Accepted != 10 {
		t.Fatalf("job A did not complete: %+v", done)
	}
	if done.Epoch != 1 {
		t.Fatalf("first run epoch = %d, want 1", done.Epoch)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: overlay the journal with a crashed daemon's state. The
	// mid-run checkpoint carries 4 real samples drawn from the same DB
	// and a 123-query bill the resumed accounting must not regress.
	ds := datagen.Vehicles(400, 21)
	base, err := store.New(spec.URL, MethodUniform, 1, ds.Schema, ds.Tuples[:4], nil, 123)
	if err != nil {
		t.Fatal(err)
	}
	craftCrashedJournal(t, journalDir, spec, base, 123)

	// Phase 3: manager B replays, requeues, resumes.
	b := newTestManager(t, srv, cfg)
	views := b.Jobs()
	if len(views) != 4 {
		t.Fatalf("restarted table has %d jobs, want 4: %+v", len(views), views)
	}
	old := views[0]
	if old.ID != "j-0001" || old.State != StateCompleted || old.Accepted != 10 {
		t.Fatalf("terminal job not restored: %+v", old)
	}
	set, err := b.SampleSet("j-0001")
	if err != nil {
		t.Fatalf("restored terminal job samples: %v", err)
	}
	if tuples, _, _ := set.DecodeSamples(); len(tuples) != 10 {
		t.Fatalf("restored sample set has %d samples, want 10", len(tuples))
	}

	for id, wantEpoch := range map[string]int64{"j-0002": 1, "j-0003": 2, "j-0004": 2} {
		fin := waitJob(t, b, id, 30*time.Second, func(v View) bool { return v.State.Terminal() })
		if fin.State != StateCompleted {
			t.Fatalf("%s after restart: %+v", id, fin)
		}
		if fin.Accepted != 10 {
			t.Fatalf("%s accepted = %d, want exactly 10 (no lost or duplicate samples)", id, fin.Accepted)
		}
		if fin.Epoch != wantEpoch {
			t.Fatalf("%s epoch = %d, want %d", id, fin.Epoch, wantEpoch)
		}
		set, err := b.SampleSet(id)
		if err != nil {
			t.Fatal(err)
		}
		tuples, _, err := set.DecodeSamples()
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != 10 {
			t.Fatalf("%s sample set has %d samples, want 10", id, len(tuples))
		}
		for _, tu := range tuples {
			if tu.ID < 0 || tu.ID >= db.Size() {
				t.Fatalf("%s sample outside DB domain: %d", id, tu.ID)
			}
		}
		if id == "j-0004" {
			if fin.Queries < 123 {
				t.Fatalf("j-0004 queries = %d; the 123-query bill from before the crash regressed", fin.Queries)
			}
			if set.Queries < 123 {
				t.Fatalf("j-0004 set bill = %d, want >= 123", set.Queries)
			}
		}
	}

	// The warm-started cache and the resumed jobs compose: the host's
	// shared cache saved real queries during the resumed runs.
	hosts := b.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("hosts = %d, want 1", len(hosts))
	}
	if hosts[0].Saved() == 0 {
		t.Fatal("warm-started history cache saved nothing across the restart")
	}

	st := b.JournalStats()
	if st.Appends == 0 || st.Fsyncs == 0 {
		t.Fatalf("journal counters flat after resumed runs: %+v", st)
	}
	if st.Degraded {
		t.Fatal("journal degraded during a clean restart test")
	}
}

// TestManagerJournalUnavailable pins the degrade-at-birth path: a
// journal directory that cannot be created leaves the manager fully
// operational, memory-only, with the condition loud on Health.
func TestManagerJournalUnavailable(t *testing.T) {
	_, srv := newTarget(t, 200, 50, hiddendb.CountNone)
	blocker := t.TempDir() + "/file"
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, srv, Config{JournalDir: blocker + "/journal"})
	h := m.Health()
	if h.Status != "degraded" || h.Journal != "unavailable" {
		t.Fatalf("health = %+v, want degraded/unavailable", h)
	}
	v, err := m.Submit(Spec{URL: srv.URL, N: 5, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, m, v.ID, 30*time.Second, func(v View) bool { return v.State.Terminal() })
	if fin.State != StateCompleted || fin.Accepted != 5 {
		t.Fatalf("memory-only job failed: %+v", fin)
	}
}

// TestHealthEndpoints pins the /healthz and /readyz wire format.
func TestHealthEndpoints(t *testing.T) {
	_, srv := newTarget(t, 200, 50, hiddendb.CountNone)
	m := NewManager(Config{JournalDir: t.TempDir(), Client: srv.Client()})
	daemon := httptest.NewServer(NewHandler(m))
	defer daemon.Close()

	get := func(path string) (int, Health) {
		t.Helper()
		resp, err := daemon.Client().Get(daemon.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp.StatusCode, h
	}

	code, h := get("/healthz")
	if code != http.StatusOK || h.Status != "ok" || h.Journal != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}
	if h.JournalStats == nil {
		t.Fatal("healthz missing journal stats")
	}
	if code, h = get("/readyz"); code != http.StatusOK || h.Draining {
		t.Fatalf("readyz = %d %+v", code, h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, h = get("/readyz"); code != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("draining readyz = %d %+v, want 503", code, h)
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200 (still alive)", code)
	}
}
