package jobsvc

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/hiddendb"
)

// TestMetricsEndpointExposition runs a real job against an in-process
// webform target, scrapes the full /metrics endpoint, and validates every
// line against the Prometheus text exposition format — not just a few
// substrings. It pins the content type, comment structure, family
// ordering, and the presence of both the legacy families and the new
// telemetry histograms.
func TestMetricsEndpointExposition(t *testing.T) {
	_, srv := newTarget(t, 400, 25, hiddendb.CountExact)
	m := newTestManager(t, srv, Config{
		MaxConcurrent:   2,
		TraceSampleRate: 1,
		TraceCapacity:   32,
	})
	h := httptest.NewServer(NewHandler(m))
	t.Cleanup(h.Close)
	api := &apiClient{t: t, base: h.URL, c: h.Client()}

	v := api.submit(Spec{URL: srv.URL, Connector: ConnectorAPI, N: 15, Workers: 2, Seed: 11})
	api.wait(v.ID, 30*time.Second, func(v View) bool { return v.State.Terminal() })
	if got := api.job(v.ID); got.State != StateCompleted {
		t.Fatalf("job finished %v (%s), want completed", got.State, got.Error)
	}

	resp, err := h.Client().Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	families := validateExposition(t, text)

	for _, want := range []string{
		"hdsamplerd_jobs",
		"hdsamplerd_samples_accepted_total",
		"hdsamplerd_queries_total",
		"hdsamplerd_queries_saved_total",
		"hdsamplerd_host_cache_issued_total",
		"hdsamplerd_host_cache_saved_total",
		"hdsamplerd_host_exec_coalesced_total",
		"hdsamplerd_host_exec_wire_calls_total",
		"hdsamplerd_host_exec_in_flight",
		"hdsamplerd_host_exec_concurrency_limit",
		"hdsamplerd_host_faults_injected_total",
		"hdsamplerd_host_wire_rtt_seconds",
		"hdsamplerd_host_exec_latency_seconds",
		"hdsamplerd_walk_duration_seconds",
		"hdsamplerd_slow_walks_total",
		"hdsamplerd_traces_started_total",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("exposition missing family %s", want)
		}
	}
	for _, wantLine := range []string{
		`hdsamplerd_jobs{state="completed"} 1`,
		`hdsamplerd_jobs{state="failed"} 0`,
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("exposition missing line %q", wantLine)
		}
	}
	// The walk-duration histogram must have recorded the job's draws.
	if !regexp.MustCompile(`hdsamplerd_walk_duration_seconds_count\{job="j-0001"\} [1-9]`).MatchString(text) {
		t.Errorf("walk duration histogram empty:\n%s", grepLines(text, "walk_duration"))
	}
	if !regexp.MustCompile(`hdsamplerd_host_wire_rtt_seconds_count\{host="[^"]+"\} [1-9]`).MatchString(text) {
		t.Errorf("wire RTT histogram empty:\n%s", grepLines(text, "wire_rtt"))
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\\\|\\"|\\n)*)"$`)
)

// validateExposition checks every line of a text-format scrape and returns
// the family name → type map.
func validateExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	families := map[string]string{}
	var familyOrder []string
	current := "" // family the samples that follow must belong to
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			mm := helpRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			mm := typeRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if _, dup := families[mm[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", i+1, mm[1])
			}
			families[mm[1]] = mm[2]
			familyOrder = append(familyOrder, mm[1])
			current = mm[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment: %q", i+1, line)
		default:
			mm := sampleRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed sample: %q", i+1, line)
			}
			name := mm[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if name != current && base != current {
				t.Fatalf("line %d: sample %s outside its TYPE'd family (current %s)", i+1, name, current)
			}
			if families[current] == "histogram" != (name != current) {
				t.Fatalf("line %d: name %s does not match family %s type %s", i+1, name, current, families[current])
			}
			if mm[2] != "" {
				for _, pair := range strings.Split(strings.Trim(mm[2], "{}"), ",") {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label %q in %q", i+1, pair, line)
					}
				}
			}
			if mm[3] != "+Inf" {
				if _, err := strconv.ParseFloat(mm[3], 64); err != nil {
					t.Fatalf("line %d: bad value %q: %v", i+1, mm[3], err)
				}
			}
		}
	}
	if !sort.StringsAreSorted(familyOrder) {
		t.Errorf("families not sorted: %v", familyOrder)
	}
	return families
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestDebugWalksEndpoint verifies the trace ring is exposed over HTTP with
// full per-level spans once a traced job has run.
func TestDebugWalksEndpoint(t *testing.T) {
	_, srv := newTarget(t, 300, 25, hiddendb.CountExact)
	m := newTestManager(t, srv, Config{
		MaxConcurrent:   1,
		TraceSampleRate: 1,
		TraceCapacity:   16,
	})
	h := httptest.NewServer(NewHandler(m))
	t.Cleanup(h.Close)
	api := &apiClient{t: t, base: h.URL, c: h.Client()}

	v := api.submit(Spec{URL: srv.URL, Connector: ConnectorAPI, N: 10, Workers: 1, Seed: 3})
	api.wait(v.ID, 30*time.Second, func(v View) bool { return v.State.Terminal() })

	code, body := api.do(http.MethodGet, "/debug/walks", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/walks: %d %s", code, body)
	}
	var dump WalkDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if dump.Started == 0 || dump.Finished == 0 || len(dump.Walks) == 0 {
		t.Fatalf("no traces captured: %+v", dump)
	}
	// The tail of the ring may hold prefetched walks the replica set
	// cancelled after reaching its target; find a decided one.
	found := false
	for _, tr := range dump.Walks {
		if !tr.Decided {
			continue
		}
		found = true
		if tr.Job != v.ID {
			t.Errorf("trace job %q, want %q", tr.Job, v.ID)
		}
		if tr.Host == "" || !tr.Produced || len(tr.Levels) == 0 {
			t.Errorf("trace incomplete: %+v", tr)
		}
		break
	}
	if !found {
		t.Fatalf("no decided trace among %d walks", len(dump.Walks))
	}
}
