// Package jobsvc is the sampling job-orchestration service behind
// cmd/hdsamplerd: the subsystem that turns the one-shot sampler library
// into the long-running system the original demo was — an operator points
// it at a live form interface and watches samples and estimates
// accumulate.
//
// A Manager accepts jobs (target URL, sampling method, sample count,
// slider, worker count, query budget), runs each on its own replica pool
// via hdsampler.ReplicaSet, and exposes live progress while the job runs.
// Jobs hitting the same target share one query-history cache per host, so
// one job's answers save every other job's queries, and a per-host
// politeness budget keeps concurrent jobs from hammering one site.
// Completed (and cancelled/failed-partial) sample sets are checkpointed
// to disk through internal/store. NewHandler exposes the whole thing as a
// REST API.
package jobsvc

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"time"
)

// Connector kinds and sampling methods accepted in a Spec.
const (
	ConnectorHTML = "html"
	ConnectorAPI  = "api"

	MethodUniform  = "uniform"
	MethodWeighted = "weighted"
	MethodCrawl    = "crawl"
)

// Spec describes one sampling job as submitted by a client.
type Spec struct {
	// URL roots the target web form interface, e.g. "http://host:8080".
	URL string `json:"url"`
	// Connector drives the target via HTML scraping ("html", default) or
	// the machine-readable API ("api").
	Connector string `json:"connector,omitempty"`
	// Method selects the algorithm: "uniform" (random drill-down,
	// default), "weighted" (count-weighted drill-down, needs a
	// count-reporting interface) or "crawl" (full extraction baseline).
	Method string `json:"method,omitempty"`
	// N is the number of samples to accept; ignored for crawl jobs.
	N int `json:"n"`
	// Workers is the sampler replica count (default 1).
	Workers int `json:"workers,omitempty"`
	// Slider is the efficiency↔skew knob in [0,1] (see hdsampler.Config):
	// omitted/null keeps the fastest default (1), and an explicit 0 —
	// representable because the field is a pointer — selects the
	// documented lowest-skew walk. C, when positive, sets the rejection
	// target directly.
	Slider *float64 `json:"slider,omitempty"`
	C      float64  `json:"c,omitempty"`
	// K is the interface's top-k limit for the slider mapping.
	K int `json:"k,omitempty"`
	// Seed drives all randomness; equal specs replay identically.
	Seed int64 `json:"seed,omitempty"`
	// MaxQueries bounds the interface queries the job may issue (for
	// crawl jobs: the crawler's query budget). When the budget is spent
	// the job fails but keeps the samples accepted so far. 0 = unlimited.
	MaxQueries int64 `json:"max_queries,omitempty"`
	// TrustCounts enables count-based history inference and, for
	// weighted jobs, parent-count reuse.
	TrustCounts bool `json:"trust_counts,omitempty"`
	// NoHistory opts the job out of the shared per-host history cache.
	NoHistory bool `json:"no_history,omitempty"`
	// NoShuffle disables per-walk attribute order reshuffling.
	NoShuffle bool `json:"no_shuffle,omitempty"`
}

// normalize fills defaults and validates the spec in place, returning the
// parsed target URL.
func (s *Spec) normalize() (*url.URL, error) {
	if s.Connector == "" {
		s.Connector = ConnectorHTML
	}
	if s.Method == "" {
		s.Method = MethodUniform
	}
	if s.Workers <= 0 {
		s.Workers = 1
	}
	switch s.Connector {
	case ConnectorHTML, ConnectorAPI:
	default:
		return nil, fmt.Errorf("jobsvc: unknown connector %q (want html or api)", s.Connector)
	}
	switch s.Method {
	case MethodUniform, MethodWeighted:
		if s.N <= 0 {
			return nil, fmt.Errorf("jobsvc: n = %d, need > 0", s.N)
		}
	case MethodCrawl:
	default:
		return nil, fmt.Errorf("jobsvc: unknown method %q (want uniform, weighted or crawl)", s.Method)
	}
	if s.Slider != nil && (*s.Slider < 0 || *s.Slider > 1) {
		return nil, fmt.Errorf("jobsvc: slider = %g, need [0,1]", *s.Slider)
	}
	if s.URL == "" {
		return nil, errors.New("jobsvc: missing target url")
	}
	u, err := url.Parse(s.URL)
	if err != nil {
		return nil, fmt.Errorf("jobsvc: bad url: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("jobsvc: url %q: need an absolute http(s) URL", s.URL)
	}
	s.URL = strings.TrimRight(u.String(), "/")
	return u, nil
}

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a run slot.
	StateQueued State = "queued"
	// StateRunning: the worker pool is drawing.
	StateRunning State = "running"
	// StateCompleted: finished cleanly with the requested samples.
	StateCompleted State = "completed"
	// StateFailed: stopped on an error (budget, connector, interface);
	// partial samples, if any, are preserved.
	StateFailed State = "failed"
	// StateCanceled: stopped by DELETE /jobs/{id} or daemon shutdown.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// View is a point-in-time snapshot of a job, the REST API's job resource.
type View struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Live progress: accepted samples, candidates drawn, rejections, the
	// interface query bill and what the shared history cache saved.
	// QueriesSaved is the cache's savings over the job's lifetime window,
	// so jobs overlapping on one host each see the window's total; the
	// exact global figure is the host cache counter on /metrics.
	Accepted       int64   `json:"accepted"`
	Candidates     int64   `json:"candidates"`
	Rejected       int64   `json:"rejected"`
	Queries        int64   `json:"queries"`
	QueriesSaved   int64   `json:"queries_saved"`
	AcceptanceRate float64 `json:"acceptance_rate"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	Error string `json:"error,omitempty"`
	// Checkpoint is the on-disk sample set path once persisted.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Epoch is the job's journal lease epoch: 0 before the first run, 1
	// for a normal run, higher after each crash-recovery resume. Always 0
	// when the daemon runs without a journal.
	Epoch int64 `json:"epoch,omitempty"`
}

// Errors the Manager returns; the HTTP layer maps them to status codes.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobsvc: no such job")
	// ErrNoSamples reports that a job has no sample set (yet).
	ErrNoSamples = errors.New("jobsvc: job has no samples")
	// ErrShuttingDown rejects submissions during shutdown.
	ErrShuttingDown = errors.New("jobsvc: manager is shutting down")
	// ErrBudgetExhausted stops a job that spent its query budget.
	ErrBudgetExhausted = errors.New("jobsvc: job query budget exhausted")
)
