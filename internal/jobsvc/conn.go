package jobsvc

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// hostLimiter is a context-aware token bucket shared by every job hitting
// one host — the per-host politeness budget. Unlike the retry/backoff
// logic inside formclient (which reacts to a site's 429s), the limiter
// proactively spaces real queries out so many concurrent jobs together
// stay under the configured rate.
//
// Reservation-style accounting: each caller takes a token immediately and
// sleeps off any debt, so arrivals are served in near-FIFO order without
// a queue.
type hostLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time

	waits atomic.Int64 // queries that had to sleep

	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error
}

func newHostLimiter(rate float64, burst int) *hostLimiter {
	if burst <= 0 {
		burst = 10
	}
	l := &hostLimiter{
		rate:  rate,
		burst: float64(burst),
		now:   time.Now,
		sleep: sleepCtx,
	}
	l.tokens = l.burst
	return l
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// wait blocks until the caller's token is due (or ctx is done).
func (l *hostLimiter) wait(ctx context.Context) error {
	if l == nil || l.rate <= 0 {
		return nil
	}
	l.mu.Lock()
	now := l.now()
	if !l.last.IsZero() {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	l.tokens--
	debt := -l.tokens
	l.mu.Unlock()
	if debt <= 0 {
		return nil
	}
	l.waits.Add(1)
	return l.sleep(ctx, time.Duration(debt/l.rate*float64(time.Second)))
}

// throttleConn interposes the per-host limiter on every real interface
// query. It sits below the shared history cache, so cache-answered
// queries cost no politeness tokens.
type throttleConn struct {
	inner formclient.Conn
	lim   *hostLimiter
}

func (t *throttleConn) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	return t.inner.Schema(ctx)
}

func (t *throttleConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	if err := t.lim.wait(ctx); err != nil {
		return nil, err
	}
	return t.inner.Execute(ctx, q)
}

func (t *throttleConn) Stats() formclient.Stats { return t.inner.Stats() }

// budgetConn enforces one job's MaxQueries: it counts the queries the
// job's samplers issue (the same number Stats.Queries reports — history
// hits included, since the budget bounds the job's work, not just its
// network bill) and fails the job once the budget is spent.
type budgetConn struct {
	inner  formclient.Conn
	budget int64
	used   atomic.Int64
}

func (b *budgetConn) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	return b.inner.Schema(ctx)
}

func (b *budgetConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	if b.used.Add(1) > b.budget {
		return nil, fmt.Errorf("%w (budget %d)", ErrBudgetExhausted, b.budget)
	}
	return b.inner.Execute(ctx, q)
}

func (b *budgetConn) Stats() formclient.Stats { return b.inner.Stats() }

var (
	_ formclient.Conn = (*throttleConn)(nil)
	_ formclient.Conn = (*budgetConn)(nil)
)
