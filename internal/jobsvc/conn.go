package jobsvc

import (
	"context"
	"fmt"
	"sync/atomic"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// The per-host politeness budget and concurrency bound live in the shared
// queryexec layer now (see hostEntry in manager.go): every job hitting one
// host draws through one queryexec.Executor whose AIMD limiter bounds the
// *aggregate* request stream — unlike the old per-goroutine politeness
// sleeps, which let N workers together exceed the configured rate N-fold.

// budgetConn enforces one job's MaxQueries: it counts the queries the
// job's samplers issue (the same number Stats.Queries reports — history
// hits included, since the budget bounds the job's work, not just its
// network bill) and fails the job once the budget is spent.
type budgetConn struct {
	inner  formclient.Conn
	budget int64
	used   atomic.Int64
}

func (b *budgetConn) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	return b.inner.Schema(ctx)
}

func (b *budgetConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	if b.used.Add(1) > b.budget {
		return nil, fmt.Errorf("%w (budget %d)", ErrBudgetExhausted, b.budget)
	}
	return b.inner.Execute(ctx, q)
}

func (b *budgetConn) Stats() formclient.Stats { return b.inner.Stats() }

var _ formclient.Conn = (*budgetConn)(nil)
