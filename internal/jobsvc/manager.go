package jobsvc

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"hdsampler"
	"hdsampler/internal/core"
	"hdsampler/internal/faultform"
	"hdsampler/internal/formclient"
	"hdsampler/internal/history"
	"hdsampler/internal/metrics"
	"hdsampler/internal/queryexec"
	"hdsampler/internal/store"
	"hdsampler/internal/telemetry"
)

// Config tunes a Manager.
type Config struct {
	// DataDir, when set, receives one JSON checkpoint per finished job
	// (<id>.json, a store.SampleSet) — including partial sets of failed
	// and cancelled jobs. Empty disables persistence.
	DataDir string
	// MaxConcurrent bounds simultaneously running jobs; the rest queue.
	// Default 4.
	MaxConcurrent int
	// HostRatePerSec is the per-host politeness budget: all jobs hitting
	// one host together issue at most this many real wire requests per
	// second (a batch request counts once — that is the batching win).
	// 0 disables throttling.
	HostRatePerSec float64
	// HostBurst is the politeness token bucket capacity (default 10).
	HostBurst int
	// HostMaxInFlight caps concurrent wire requests per host: the AIMD
	// adaptive-concurrency ceiling, additively raised on clean responses
	// and multiplicatively cut on 429 pushback. 0 disables concurrency
	// limiting.
	HostMaxInFlight int
	// BatchLinger, when positive, lets concurrent distinct queries from
	// all jobs on one API target share batch wire requests packed within
	// this window (POST /api/search/batch; one rate-limit charge per
	// batch). HTML targets fall back to sequential execution.
	BatchLinger time.Duration
	// BatchMax bounds queries per batch wire request (default 16).
	BatchMax int
	// CacheMaxEntries caps each shared per-host history cache
	// (0 = unlimited).
	CacheMaxEntries int
	// HistoryDir, when set, checkpoints each shared per-host history
	// cache there on shutdown and warm-starts new caches from matching
	// checkpoints, so a restarted daemon does not re-pay query bills the
	// previous run already paid. Empty disables history persistence.
	HistoryDir string
	// FaultProfile, when naming a faultform preset other than "none",
	// wraps every target connector in that adversarial profile — the
	// daemon's chaos/staging mode: jobs run against a deliberately
	// misbehaving interface (429 bursts, blips, jitter) so operators can
	// prove the stack absorbs production-grade rudeness before pointing
	// it at production. Injected fault counts surface per host on
	// /metrics. Unknown names are rejected by cmd/hdsamplerd and ignored
	// (with a log line) here.
	FaultProfile string
	// FaultSeed makes the injected misbehaviour reproducible; each target
	// derives its own stream from this and its identity.
	FaultSeed int64
	// Client overrides the HTTP client used for target connectors
	// (timeouts, proxies, test servers).
	Client *http.Client
	// TraceSampleRate is the fraction of candidate draws traced end to end
	// (per-level queries, cache and execution outcomes, latencies) and
	// exposed on /debug/walks. 0 disables tracing; 1 traces every walk.
	TraceSampleRate float64
	// TraceCapacity is the finished-trace ring buffer size (default 128).
	TraceCapacity int
	// TraceSeed seeds the deterministic trace sampler; runs with equal
	// seeds sample the same walk positions.
	TraceSeed uint64
	// SlowWalk, when positive, logs (and counts) candidate draws that take
	// at least this long.
	SlowWalk time.Duration
	// SlowWalkQueries, when positive, logs (and counts) candidate draws
	// that spend at least this many interface queries.
	SlowWalkQueries int
	// Logger receives the manager's structured log output; nil uses
	// slog.Default.
	Logger *slog.Logger
}

// logger resolves the configured structured logger.
func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// Manager owns the job table, the per-host connector stacks and the run
// slots. It is safe for concurrent use by the HTTP layer.
type Manager struct {
	cfg Config
	sem chan struct{}
	lg  *slog.Logger

	// Telemetry: the unified metrics registry behind /metrics, the walk
	// tracer behind /debug/walks, and the shared latency histograms the
	// per-host stacks and per-job observers record into.
	reg       *telemetry.Registry
	tracer    *telemetry.Tracer
	wireHist  *telemetry.HistogramVec // wire RTT by host
	execHist  *telemetry.HistogramVec // execution-layer latency by host
	cacheHist *telemetry.HistogramVec // cache lookup latency by host
	walkHist  *telemetry.HistogramVec // whole-walk duration by job
	slowWalks *telemetry.Counter

	mu     sync.Mutex
	seq    int
	jobs   map[string]*job
	order  []string
	hosts  map[string]*hostEntry
	closed bool
	wg     sync.WaitGroup
}

// hostEntry shares one admission limiter (rate + AIMD concurrency), one
// execution layer per target, and one history cache across every job
// hitting a host.
type hostEntry struct {
	host    string
	limiter *queryexec.Limiter

	// wire / execH / lookup are the host's registry-backed latency
	// histograms, shared by every target stack on the host.
	wire   *telemetry.Histogram
	execH  *telemetry.Histogram
	lookup *telemetry.Histogram

	mu      sync.Mutex
	targets map[string]*target
}

// target is one (connector kind, base URL) stack below the caches: the
// raw formclient conn (optionally wrapped in the configured fault
// profile) wrapped in the shared execution layer (coalescing, batching,
// host-wide admission control). Caches are split by TrustCounts because
// trusted and untrusted inference disagree.
type target struct {
	key    string // connector + "|" + URL, the checkpoint identity
	conn   formclient.Conn
	exec   *queryexec.Executor
	fault  faultform.Faulty // nil without a fault profile
	caches map[bool]*history.Cache
}

// job is the manager's internal job record.
type job struct {
	id   string
	spec Spec
	host string

	ctx    context.Context
	cancel context.CancelFunc
	cache  *history.Cache // shared per-host cache this job draws through (nil with NoHistory)

	mu         sync.Mutex
	state      State
	created    time.Time
	started    time.Time
	finished   time.Time
	rs         *hdsampler.ReplicaSet
	crawler    *core.Crawler
	savedAt0   int64
	finalStats hdsampler.Stats
	err        error
	set        *store.SampleSet
	checkpoint string
	cancelled  bool
}

// NewManager builds a manager; call Shutdown before discarding it.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	m := &Manager{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		lg:    cfg.logger().With("component", "jobsvc"),
		reg:   telemetry.NewRegistry(),
		jobs:  make(map[string]*job),
		hosts: make(map[string]*hostEntry),
	}
	m.tracer = telemetry.NewTracer(telemetry.TracerOptions{
		Rate:     cfg.TraceSampleRate,
		Seed:     cfg.TraceSeed,
		Capacity: cfg.TraceCapacity,
	})
	m.registerMetrics()
	return m
}

// Registry exposes the manager's metrics registry (the /metrics source).
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// Tracer exposes the manager's walk tracer (the /debug/walks source).
func (m *Manager) Tracer() *telemetry.Tracer { return m.tracer }

// Submit validates and enqueues a job, returning its initial view. The
// job starts as soon as a run slot frees up.
func (m *Manager) Submit(spec Spec) (View, error) {
	u, err := spec.normalize()
	if err != nil {
		return View{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return View{}, ErrShuttingDown
	}
	host := m.hostLocked(u.Host)
	m.mu.Unlock()

	// Assemble the connector stack before publishing the job, so every
	// field concurrent view() calls read is in place first.
	conn, cache := host.connFor(spec, m.cfg)
	j := &job{
		spec:    spec,
		host:    u.Host,
		cache:   cache,
		state:   StateQueued,
		created: time.Now().UTC(),
	}
	//hdlint:ignore ctxflow a job outlives the submitting request; its lifetime is bounded by cancel via Stop/Close, not by any caller context
	j.ctx, j.cancel = context.WithCancel(context.Background())

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return View{}, ErrShuttingDown
	}
	m.seq++
	j.id = fmt.Sprintf("j-%04d", m.seq)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(j, conn)
	return j.view(), nil
}

// hostLocked returns (creating on first use) the entry for host; the
// caller holds m.mu.
func (m *Manager) hostLocked(host string) *hostEntry {
	he, ok := m.hosts[host]
	if !ok {
		he = &hostEntry{
			host:    host,
			targets: make(map[string]*target),
			wire:    m.wireHist.With(host),
			execH:   m.execHist.With(host),
			lookup:  m.cacheHist.With(host),
		}
		if m.cfg.HostRatePerSec > 0 || m.cfg.HostMaxInFlight > 0 {
			he.limiter = queryexec.NewLimiter(queryexec.LimiterOptions{
				MaxInFlight: m.cfg.HostMaxInFlight,
				RatePerSec:  m.cfg.HostRatePerSec,
				Burst:       m.cfg.HostBurst,
			})
		}
		m.hosts[host] = he
	}
	return he
}

// connFor assembles the job's connector stack: base conn (shared per
// target URL) → shared execution layer (coalescing, micro-batching,
// host-wide AIMD admission) → shared history cache (unless opted out) →
// per-job query budget. A cache created here is warm-started from its
// HistoryDir checkpoint, when one exists.
func (he *hostEntry) connFor(spec Spec, cfg Config) (formclient.Conn, *history.Cache) {
	key := spec.Connector + "|" + spec.URL

	he.mu.Lock()
	tg, ok := he.targets[key]
	if !ok {
		var base formclient.Conn
		opts := formclient.HTTPOptions{Client: cfg.Client}
		if spec.Connector == ConnectorAPI {
			base = formclient.NewAPI(spec.URL, opts)
		} else {
			base = formclient.NewHTTP(spec.URL, opts)
		}
		var fault faultform.Faulty
		if prof, ok := faultProfile(cfg); ok {
			// Chaos mode: the adversarial wrapper plays the misbehaving
			// site, below the execution layer, so the AIMD limiter and the
			// retry paths absorb the injected rudeness exactly as they
			// would the real thing.
			fault = faultform.Wrap(base, prof, faultSeed(cfg.FaultSeed, key))
			base = fault
		}
		exec := queryexec.New(base, queryexec.Options{
			BatchLinger: cfg.BatchLinger,
			MaxBatch:    cfg.BatchMax,
			Limiter:     he.limiter,
			Wire:        he.wire,
			ExecLatency: he.execH,
		})
		tg = &target{key: key, conn: exec, exec: exec, fault: fault, caches: make(map[bool]*history.Cache)}
		he.targets[key] = tg
	}
	var conn formclient.Conn = tg.conn
	cache, haveCache := tg.caches[spec.TrustCounts]
	he.mu.Unlock()

	if !spec.NoHistory {
		if !haveCache {
			// Build — and, when configured, warm-start — the cache before
			// publishing it, so no job ever draws through a half-restored
			// cache and no stale checkpoint entry can overwrite an answer
			// a live job just paid for.
			fresh := history.New(tg.conn, history.Options{
				TrustCounts: spec.TrustCounts,
				MaxEntries:  cfg.CacheMaxEntries,
				Lookup:      he.lookup,
			})
			if cfg.HistoryDir != "" {
				warmStartCache(cfg.HistoryDir, historySource(key, spec.TrustCounts), fresh, cfg.logger())
			}
			he.mu.Lock()
			if racer, ok := tg.caches[spec.TrustCounts]; ok {
				cache = racer // a concurrent submit won; ours is discarded
			} else {
				tg.caches[spec.TrustCounts] = fresh
				cache = fresh
			}
			he.mu.Unlock()
		}
		conn = cache
	} else {
		cache = nil
	}

	if spec.MaxQueries > 0 && spec.Method != MethodCrawl {
		conn = &budgetConn{inner: conn, budget: spec.MaxQueries}
	}
	return conn, cache
}

// faultProfile resolves the configured fault preset; ok is false when
// injection is off (empty, "none", or an unknown name — logged once per
// submit path would be noisy, so unknown names log here and disable).
func faultProfile(cfg Config) (faultform.Profile, bool) {
	if cfg.FaultProfile == "" || cfg.FaultProfile == "none" {
		return faultform.Profile{}, false
	}
	p, ok := faultform.Preset(cfg.FaultProfile)
	if !ok {
		cfg.logger().Warn("unknown fault profile; fault injection disabled",
			"component", "jobsvc", "profile", cfg.FaultProfile, "known", fmt.Sprint(faultform.PresetNames()))
		return faultform.Profile{}, false
	}
	return p, true
}

// faultSeed derives a target's fault stream from the daemon seed and the
// target identity, so two targets never replay one misbehaviour script.
func faultSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64())
}

// historySource names one cache identity for checkpointing: the target
// key plus the trust mode (trusted and untrusted caches infer
// differently and must not adopt each other's checkpoints).
func historySource(targetKey string, trust bool) string {
	return targetKey + "|trust=" + strconv.FormatBool(trust)
}

// historyDumpPath maps a cache identity onto its checkpoint file.
func historyDumpPath(dir, source string) string {
	h := fnv.New64a()
	h.Write([]byte(source))
	return filepath.Join(dir, fmt.Sprintf("history-%016x.json", h.Sum64()))
}

// warmStartCache best-effort restores a freshly created cache from its
// checkpoint; failures only cost the warm start, never the job.
func warmStartCache(dir, source string, cache *history.Cache, lg *slog.Logger) {
	lg = lg.With("component", "jobsvc", "source", source)
	path := historyDumpPath(dir, source)
	dump, err := store.LoadHistoryFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			lg.Warn("history warm-start failed", "path", path, "error", err)
		}
		return
	}
	if dump.Source != source {
		lg.Warn("history warm-start skipped: checkpoint identity mismatch",
			"path", path, "checkpoint_source", dump.Source)
		return
	}
	//hdlint:ignore ctxflow warm-start runs during construction, before any request context exists; the timeout is its only bound
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	n, err := cache.Restore(ctx, dump.Snapshot())
	if err != nil {
		lg.Warn("history warm-start failed", "path", path, "error", err)
		return
	}
	lg.Info("warm-started history cache", "entries", n)
}

// dumpHistory checkpoints every shared cache to HistoryDir.
func (m *Manager) dumpHistory() {
	if m.cfg.HistoryDir == "" {
		return
	}
	if err := os.MkdirAll(m.cfg.HistoryDir, 0o755); err != nil {
		m.lg.Warn("history checkpoint dir", "dir", m.cfg.HistoryDir, "error", err)
		return
	}
	m.mu.Lock()
	hes := make([]*hostEntry, 0, len(m.hosts))
	for _, he := range m.hosts {
		hes = append(hes, he)
	}
	m.mu.Unlock()
	for _, he := range hes {
		he.mu.Lock()
		type dumpTask struct {
			source string
			cache  *history.Cache
		}
		var tasks []dumpTask
		for _, tg := range he.targets {
			for trust, c := range tg.caches {
				tasks = append(tasks, dumpTask{historySource(tg.key, trust), c})
			}
		}
		he.mu.Unlock()
		for _, t := range tasks {
			if t.cache.Len() == 0 {
				continue
			}
			dump := store.NewHistoryDump(t.source, t.cache.Dump())
			path := historyDumpPath(m.cfg.HistoryDir, t.source)
			if err := store.SaveHistoryFile(path, dump); err != nil {
				m.lg.Warn("history checkpoint failed", "path", path, "error", err)
			}
		}
	}
}

// run executes one job to completion; it owns the job's state machine.
func (m *Manager) run(j *job, conn formclient.Conn) {
	defer m.wg.Done()

	// Acquire a run slot; cancellation while queued finishes the job
	// without ever running it.
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-j.ctx.Done():
		j.finish(m, nil, hdsampler.Stats{}, j.ctx.Err())
		return
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now().UTC()
	if j.cache != nil {
		j.savedAt0 = j.cache.CacheStats().Saved()
	}
	j.mu.Unlock()

	if j.spec.Method == MethodCrawl {
		m.runCrawl(j, conn)
		return
	}

	cfg := hdsampler.Config{
		Seed:         j.spec.Seed,
		C:            j.spec.C,
		K:            j.spec.K,
		ShuffleOrder: !j.spec.NoShuffle,
		// History, when on, is already in the conn stack (shared across
		// jobs); the replicas must not wrap another cache on top. The
		// same goes for the execution layer: the shared per-host
		// executor sits below the caches.
		UseHistory: false,
		Exec:       hdsampler.ExecConfig{Disable: true},
		// One observer per job: the duration histogram series carries the
		// job label, while the tracer, slow-walk counter and logger are the
		// daemon-wide instruments. Replicas share it (its instruments are
		// concurrency-safe).
		Obs: &telemetry.WalkObserver{
			Tracer:      m.tracer,
			Duration:    m.walkHist.With(j.id),
			SlowWalk:    m.cfg.SlowWalk,
			SlowQueries: m.cfg.SlowWalkQueries,
			SlowCount:   m.slowWalks,
			Logger:      m.lg,
			Job:         j.id,
			Host:        j.host,
		},
	}
	if j.spec.Slider != nil {
		cfg.Slider = *j.spec.Slider
		cfg.SliderSet = true
	}
	if j.spec.Method == MethodWeighted {
		cfg.Method = hdsampler.MethodCountWeighted
		cfg.UseParentCount = j.spec.TrustCounts
	}
	rs, err := hdsampler.NewReplicaSet(j.ctx, conn, cfg, j.spec.Workers)
	if err != nil {
		j.finish(m, nil, hdsampler.Stats{}, err)
		return
	}
	j.mu.Lock()
	j.rs = rs
	j.mu.Unlock()

	_, stats, err := rs.Draw(j.ctx, j.spec.N)
	set, serr := j.sampleSet(rs.Schema(), rs.Samples(), rs.C(), stats.Queries)
	if err == nil {
		err = serr
	}
	j.finish(m, set, stats, err)
}

// runCrawl executes a full-extraction job.
func (m *Manager) runCrawl(j *job, conn formclient.Conn) {
	start := time.Now()
	c, err := core.NewCrawler(j.ctx, conn, core.CrawlerConfig{MaxQueries: j.spec.MaxQueries})
	if err != nil {
		j.finish(m, nil, hdsampler.Stats{}, err)
		return
	}
	j.mu.Lock()
	j.crawler = c
	j.mu.Unlock()

	tuples, err := c.Run(j.ctx)
	stats := hdsampler.Stats{
		Accepted:   int64(len(tuples)),
		Candidates: int64(len(tuples)),
		Queries:    c.Queries(),
		Elapsed:    time.Since(start),
	}
	schema, serr := conn.Schema(j.ctx)
	var set *store.SampleSet
	if serr == nil {
		samples := make([]hdsampler.Sample, len(tuples))
		for i, t := range tuples {
			samples[i] = hdsampler.Sample{Tuple: t}
		}
		set, serr = j.sampleSet(schema, samples, 1, stats.Queries)
	}
	if err == nil {
		err = serr
	}
	j.finish(m, set, stats, err)
}

// sampleSet packages accepted samples as a persistable store.SampleSet;
// nil (with no error) when there are no samples to keep.
func (j *job) sampleSet(schema *hdsampler.Schema, samples []hdsampler.Sample, c float64, queries int64) (*store.SampleSet, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	tuples := make([]hdsampler.Tuple, len(samples))
	reaches := make([]float64, len(samples))
	for i, s := range samples {
		tuples[i] = s.Tuple
		reaches[i] = s.Reach
	}
	return store.New(j.spec.URL, j.spec.Method, c, schema, tuples, reaches, queries)
}

// finish records the terminal state and checkpoints the sample set.
func (j *job) finish(m *Manager, set *store.SampleSet, stats hdsampler.Stats, err error) {
	j.mu.Lock()
	if j.cache != nil {
		stats.QueriesSaved = j.cache.CacheStats().Saved() - j.savedAt0
	}
	j.finished = time.Now().UTC()
	j.finalStats = stats
	j.set = set
	switch {
	case j.cancelled || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		if err == nil || errors.Is(err, context.Canceled) {
			err = nil
		}
	case err != nil:
		j.state = StateFailed
	default:
		j.state = StateCompleted
	}
	j.err = err
	// Release the replica machinery: terminal views read finalStats and
	// j.set, and a long-running daemon must not retain every finished
	// job's samplers, pipelines and duplicate sample slices.
	j.rs = nil
	j.crawler = nil
	id := j.id
	j.mu.Unlock()

	if m.cfg.DataDir != "" && set != nil {
		path := filepath.Join(m.cfg.DataDir, id+".json")
		perr := os.MkdirAll(m.cfg.DataDir, 0o755)
		if perr == nil {
			perr = store.SaveFile(path, set)
		}
		j.mu.Lock()
		if perr != nil {
			// Keep the terminal state but surface the broken durability on
			// the view and in the daemon log.
			m.lg.Warn("sample checkpoint failed", "job", id, "path", path, "error", perr)
			if j.err == nil {
				j.err = fmt.Errorf("checkpoint: %w", perr)
			}
		} else {
			j.checkpoint = path
		}
		j.mu.Unlock()
	}
}

// view snapshots the job, folding in live pool progress while running.
func (j *job) view() View {
	j.mu.Lock()
	v := View{
		ID:      j.id,
		State:   j.state,
		Spec:    j.spec,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	v.Checkpoint = j.checkpoint
	rs, crawler := j.rs, j.crawler
	terminal := j.state.Terminal()
	stats := j.finalStats
	cache, savedAt0 := j.cache, j.savedAt0
	started := j.started
	j.mu.Unlock()

	switch {
	case terminal:
	case rs != nil:
		stats = rs.Progress()
		if cache != nil {
			stats.QueriesSaved = cache.CacheStats().Saved() - savedAt0
		}
	case crawler != nil:
		stats = hdsampler.Stats{Queries: crawler.Queries()}
		if !started.IsZero() {
			stats.Elapsed = time.Since(started)
		}
	}
	v.Accepted = stats.Accepted
	v.Candidates = stats.Candidates
	v.Rejected = stats.Rejected
	v.Queries = stats.Queries
	v.QueriesSaved = stats.QueriesSaved
	if stats.Candidates > 0 {
		v.AcceptanceRate = float64(stats.Accepted) / float64(stats.Candidates)
	}
	v.ElapsedSeconds = stats.Elapsed.Seconds()
	return v
}

// Jobs lists every job in submission order.
func (m *Manager) Jobs() []View {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]View, len(js))
	for i, j := range js {
		out[i] = j.view()
	}
	return out
}

// Job returns one job's snapshot.
func (m *Manager) Job(id string) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// Cancel stops a queued or running job; cancelling a terminal job is a
// no-op. The job transitions to canceled once its workers drain.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelled = true
	}
	j.mu.Unlock()
	j.cancel()
	return j.view(), nil
}

// SampleSet returns a job's samples as a persistable set: the final set
// for terminal jobs, a live snapshot for running ones.
func (m *Manager) SampleSet(id string) (*store.SampleSet, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	set, rs := j.set, j.rs
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		if set == nil {
			return nil, ErrNoSamples
		}
		return set, nil
	}
	if rs == nil {
		return nil, ErrNoSamples
	}
	live, err := j.sampleSet(rs.Schema(), rs.Samples(), rs.C(), rs.Progress().Queries)
	if err != nil {
		return nil, err
	}
	if live == nil {
		return nil, ErrNoSamples
	}
	return live, nil
}

// HostStats aggregates one host's shared-infrastructure counters.
type HostStats struct {
	Host string `json:"host"`
	// Issued / ExactHits / Inferred / Evictions sum the host's history
	// caches.
	Issued    int64 `json:"issued"`
	ExactHits int64 `json:"exact_hits"`
	Inferred  int64 `json:"inferred"`
	Evictions int64 `json:"evictions"`
	// Entries is the total cached query count (Protected the pinned
	// subset), Throttled the wire requests the admission limiter had to
	// delay for the politeness budget.
	Entries   int   `json:"entries"`
	Protected int   `json:"protected"`
	Throttled int64 `json:"throttled"`
	// Coalesced / Batched / BatchRequests / WireCalls sum the host's
	// execution-layer savings: queries answered by joining identical
	// in-flight queries, queries shipped inside shared batch requests,
	// the batch wire requests themselves, and total wire executions.
	// TransientRetries counts wire executions the layer repeated after
	// transient interface faults.
	Coalesced        int64 `json:"coalesced"`
	Batched          int64 `json:"batched"`
	BatchRequests    int64 `json:"batch_requests"`
	WireCalls        int64 `json:"wire_calls"`
	TransientRetries int64 `json:"transient_retries"`
	// Faults sums the misbehaviour the configured fault profile injected
	// into this host's targets (all zero without a profile).
	Faults faultform.Stats `json:"faults"`
	// InFlight and Limit snapshot the host's admission controller: wire
	// requests currently running and the AIMD concurrency window (0 when
	// concurrency limiting is off). Backoffs counts 429-pushback window
	// cuts.
	InFlight int     `json:"in_flight"`
	Limit    float64 `json:"limit"`
	Backoffs int64   `json:"backoffs"`
	// ShardBalance summarizes per-shard entry counts across the host's
	// caches: CV 0 means the shards carry identical load.
	ShardBalance metrics.Summary `json:"shard_balance"`
}

// Saved is the host's total query-history savings.
func (h HostStats) Saved() int64 { return h.ExactHits + h.Inferred }

// Hosts reports per-host cache and politeness stats, sorted by host.
func (m *Manager) Hosts() []HostStats {
	m.mu.Lock()
	hes := make([]*hostEntry, 0, len(m.hosts))
	for _, he := range m.hosts {
		hes = append(hes, he)
	}
	m.mu.Unlock()
	out := make([]HostStats, 0, len(hes))
	for _, he := range hes {
		hs := HostStats{Host: he.host}
		if he.limiter != nil {
			hs.Throttled = he.limiter.Waits()
			hs.Backoffs = he.limiter.Backoffs()
			hs.InFlight = he.limiter.InFlight()
			hs.Limit = he.limiter.Limit()
		}
		var shardLoads []float64
		he.mu.Lock()
		caches := make([]*history.Cache, 0, len(he.targets))
		for _, tg := range he.targets {
			xs := tg.exec.ExecStats()
			hs.Coalesced += xs.Coalesced
			hs.Batched += xs.Batched
			hs.BatchRequests += xs.BatchRequests
			hs.WireCalls += xs.WireCalls
			hs.TransientRetries += xs.TransientRetries
			if tg.fault != nil {
				fs := tg.fault.FaultStats()
				hs.Faults.RateLimited += fs.RateLimited
				hs.Faults.Exhausted429s += fs.Exhausted429s
				hs.Faults.Transients += fs.Transients
				hs.Faults.Jittered += fs.Jittered
				hs.Faults.Reordered += fs.Reordered
				hs.Faults.RoundedCounts += fs.RoundedCounts
				hs.Faults.SlowCalls += fs.SlowCalls
			}
			for _, c := range tg.caches {
				caches = append(caches, c)
			}
		}
		he.mu.Unlock()
		for _, c := range caches {
			cs := c.CacheStats()
			hs.Issued += cs.Issued
			hs.ExactHits += cs.ExactHits
			hs.Inferred += cs.Inferred
			hs.Evictions += cs.Evictions
			for _, ss := range c.ShardStats() {
				hs.Entries += ss.Entries
				hs.Protected += ss.Protected
				shardLoads = append(shardLoads, float64(ss.Entries))
			}
		}
		hs.ShardBalance = metrics.Summarize(shardLoads)
		out = append(out, hs)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Host < out[k].Host })
	return out
}

// Shutdown stops accepting jobs, cancels everything queued or running and
// waits (bounded by ctx) for the workers to drain; partial sample sets
// are persisted by each job's normal finish path.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.cancelled = true
		}
		j.mu.Unlock()
		j.cancel()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.dumpHistory()
		return nil
	case <-ctx.Done():
		// Checkpoint what we can even on an overrun drain; Dump is safe
		// while stragglers still write.
		m.dumpHistory()
		return fmt.Errorf("jobsvc: shutdown: %w", ctx.Err())
	}
}
