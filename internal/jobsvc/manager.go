package jobsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"hdsampler"
	"hdsampler/internal/core"
	"hdsampler/internal/faultform"
	"hdsampler/internal/formclient"
	"hdsampler/internal/history"
	"hdsampler/internal/jobq"
	"hdsampler/internal/metrics"
	"hdsampler/internal/queryexec"
	"hdsampler/internal/store"
	"hdsampler/internal/telemetry"
)

// Config tunes a Manager.
type Config struct {
	// DataDir, when set, receives one JSON checkpoint per finished job
	// (<id>.json, a store.SampleSet) — including partial sets of failed
	// and cancelled jobs. Empty disables persistence.
	DataDir string
	// MaxConcurrent bounds simultaneously running jobs; the rest queue.
	// Default 4.
	MaxConcurrent int
	// HostRatePerSec is the per-host politeness budget: all jobs hitting
	// one host together issue at most this many real wire requests per
	// second (a batch request counts once — that is the batching win).
	// 0 disables throttling.
	HostRatePerSec float64
	// HostBurst is the politeness token bucket capacity (default 10).
	HostBurst int
	// HostMaxInFlight caps concurrent wire requests per host: the AIMD
	// adaptive-concurrency ceiling, additively raised on clean responses
	// and multiplicatively cut on 429 pushback. 0 disables concurrency
	// limiting.
	HostMaxInFlight int
	// BatchLinger, when positive, lets concurrent distinct queries from
	// all jobs on one API target share batch wire requests packed within
	// this window (POST /api/search/batch; one rate-limit charge per
	// batch). HTML targets fall back to sequential execution.
	BatchLinger time.Duration
	// BatchMax bounds queries per batch wire request (default 16).
	BatchMax int
	// CacheMaxEntries caps each shared per-host history cache
	// (0 = unlimited).
	CacheMaxEntries int
	// HistoryDir, when set, checkpoints each shared per-host history
	// cache there on shutdown (and periodically, piggybacked on journal
	// checkpoints) and warm-starts new caches from matching checkpoints,
	// so a restarted daemon does not re-pay query bills the previous run
	// already paid. Empty disables history persistence.
	HistoryDir string
	// JournalDir, when set, enables the crash-safe job journal: every
	// admission is fsynced before Submit acknowledges it, running jobs
	// checkpoint progress under a lease epoch, and a restarted manager
	// replays the journal — terminal jobs reappear in the table, and
	// interrupted jobs are requeued and resumed under a fresh epoch.
	// A journal disk failure degrades the manager to memory-only
	// operation (surfaced on Health and /metrics), never fails jobs.
	// Empty disables durability.
	JournalDir string
	// CheckpointEvery is the interval between mid-run progress
	// checkpoints journaled for each running job (default 2s; negative
	// disables mid-run checkpoints, leaving admission/terminal records).
	CheckpointEvery time.Duration
	// JournalCompactEvery overrides the journal's snapshot+truncate
	// compaction cadence in records (0 = jobq default).
	JournalCompactEvery int
	// FaultProfile, when naming a faultform preset other than "none",
	// wraps every target connector in that adversarial profile — the
	// daemon's chaos/staging mode: jobs run against a deliberately
	// misbehaving interface (429 bursts, blips, jitter) so operators can
	// prove the stack absorbs production-grade rudeness before pointing
	// it at production. Injected fault counts surface per host on
	// /metrics. Unknown names are rejected by cmd/hdsamplerd and ignored
	// (with a log line) here.
	FaultProfile string
	// FaultSeed makes the injected misbehaviour reproducible; each target
	// derives its own stream from this and its identity.
	FaultSeed int64
	// Client overrides the HTTP client used for target connectors
	// (timeouts, proxies, test servers).
	Client *http.Client
	// TraceSampleRate is the fraction of candidate draws traced end to end
	// (per-level queries, cache and execution outcomes, latencies) and
	// exposed on /debug/walks. 0 disables tracing; 1 traces every walk.
	TraceSampleRate float64
	// TraceCapacity is the finished-trace ring buffer size (default 128).
	TraceCapacity int
	// TraceSeed seeds the deterministic trace sampler; runs with equal
	// seeds sample the same walk positions.
	TraceSeed uint64
	// SlowWalk, when positive, logs (and counts) candidate draws that take
	// at least this long.
	SlowWalk time.Duration
	// SlowWalkQueries, when positive, logs (and counts) candidate draws
	// that spend at least this many interface queries.
	SlowWalkQueries int
	// Logger receives the manager's structured log output; nil uses
	// slog.Default.
	Logger *slog.Logger
}

// logger resolves the configured structured logger.
func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// Manager owns the job table, the per-host connector stacks and the run
// slots. It is safe for concurrent use by the HTTP layer.
type Manager struct {
	cfg Config
	sem chan struct{}
	lg  *slog.Logger

	// Telemetry: the unified metrics registry behind /metrics, the walk
	// tracer behind /debug/walks, and the shared latency histograms the
	// per-host stacks and per-job observers record into.
	reg       *telemetry.Registry
	tracer    *telemetry.Tracer
	wireHist  *telemetry.HistogramVec // wire RTT by host
	execHist  *telemetry.HistogramVec // execution-layer latency by host
	cacheHist *telemetry.HistogramVec // cache lookup latency by host
	walkHist  *telemetry.HistogramVec // whole-walk duration by job
	slowWalks *telemetry.Counter

	// journal is the crash-safe job journal (nil without JournalDir);
	// journalBroken records a journal that failed to open at startup, so
	// health can say "durability configured but unavailable".
	journal       *jobq.Journal
	journalBroken bool

	// histMu throttles the periodic history dumps piggybacked on journal
	// checkpoints (dumpHistory walks every cache; once per few seconds is
	// plenty for a kill-9 warm start).
	histMu       sync.Mutex
	lastHistDump time.Time

	mu     sync.Mutex
	seq    int
	jobs   map[string]*job
	order  []string
	hosts  map[string]*hostEntry
	closed bool
	wg     sync.WaitGroup
}

// hostEntry shares one admission limiter (rate + AIMD concurrency), one
// execution layer per target, and one history cache across every job
// hitting a host.
type hostEntry struct {
	host    string
	limiter *queryexec.Limiter

	// wire / execH / lookup are the host's registry-backed latency
	// histograms, shared by every target stack on the host.
	wire   *telemetry.Histogram
	execH  *telemetry.Histogram
	lookup *telemetry.Histogram

	mu      sync.Mutex
	targets map[string]*target
}

// target is one (connector kind, base URL) stack below the caches: the
// raw formclient conn (optionally wrapped in the configured fault
// profile) wrapped in the shared execution layer (coalescing, batching,
// host-wide admission control). Caches are split by TrustCounts because
// trusted and untrusted inference disagree.
type target struct {
	key    string // connector + "|" + URL, the checkpoint identity
	conn   formclient.Conn
	exec   *queryexec.Executor
	fault  faultform.Faulty // nil without a fault profile
	caches map[bool]*history.Cache
}

// job is the manager's internal job record.
type job struct {
	id   string
	spec Spec
	host string

	ctx    context.Context
	cancel context.CancelFunc
	cache  *history.Cache // shared per-host cache this job draws through (nil with NoHistory)

	// Journal-replay base: progress a previous run (earlier lease epoch)
	// already paid for, adopted at restore time and folded into every
	// view, checkpoint and the terminal sample set. Written only before
	// the run goroutine starts, so reads need no lock.
	resumed     bool
	baseStats   hdsampler.Stats
	baseSchema  *hdsampler.Schema
	baseTuples  []hdsampler.Tuple
	baseReaches []float64
	baseBills   []int64
	baseC       float64

	mu         sync.Mutex
	state      State
	created    time.Time
	started    time.Time
	finished   time.Time
	epoch      int64 // current journal lease epoch (0 = never leased)
	rs         *hdsampler.ReplicaSet
	crawler    *core.Crawler
	savedAt0   int64
	finalStats hdsampler.Stats
	err        error
	set        *store.SampleSet
	checkpoint string
	cancelled  bool
}

// NewManager builds a manager; call Shutdown before discarding it. With
// JournalDir set it replays the journal first: terminal jobs reappear in
// the table and interrupted jobs are requeued under a fresh lease epoch.
// A journal that cannot open degrades the manager to memory-only
// operation (loudly) rather than failing construction.
func NewManager(cfg Config) *Manager {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2 * time.Second
	}
	m := &Manager{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		lg:    cfg.logger().With("component", "jobsvc"),
		reg:   telemetry.NewRegistry(),
		jobs:  make(map[string]*job),
		hosts: make(map[string]*hostEntry),
	}
	m.tracer = telemetry.NewTracer(telemetry.TracerOptions{
		Rate:     cfg.TraceSampleRate,
		Seed:     cfg.TraceSeed,
		Capacity: cfg.TraceCapacity,
	})
	var replay *jobq.Replay
	if cfg.JournalDir != "" {
		jr, rep, err := jobq.Open(cfg.JournalDir, jobq.Options{
			CompactEvery: cfg.JournalCompactEvery,
			Logger:       m.lg,
		})
		if err != nil {
			m.journalBroken = true
			m.lg.Error("job journal unavailable; running without durability",
				"dir", cfg.JournalDir, "error", err)
		} else {
			m.journal = jr
			replay = rep
		}
	}
	m.registerMetrics()
	if replay != nil {
		m.restore(replay)
	}
	return m
}

// Registry exposes the manager's metrics registry (the /metrics source).
func (m *Manager) Registry() *telemetry.Registry { return m.reg }

// Tracer exposes the manager's walk tracer (the /debug/walks source).
func (m *Manager) Tracer() *telemetry.Tracer { return m.tracer }

// Submit validates and enqueues a job, returning its initial view. The
// job starts as soon as a run slot frees up. With a journal configured,
// the admission is fsynced before Submit returns: an acknowledged job
// survives SIGKILL.
func (m *Manager) Submit(spec Spec) (View, error) {
	u, err := spec.normalize()
	if err != nil {
		return View{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return View{}, ErrShuttingDown
	}
	host := m.hostLocked(u.Host)
	m.seq++
	id := fmt.Sprintf("j-%04d", m.seq)
	m.mu.Unlock()

	// Journal the admission before acknowledging it — outside m.mu, the
	// fsync must not serialize the whole job table. Disk failures degrade
	// the journal internally (Admit still returns nil); the only real
	// error here is a closed journal racing shutdown.
	created := time.Now().UTC()
	if m.journal != nil {
		specJSON, jerr := json.Marshal(spec)
		if jerr == nil {
			jerr = m.journal.Admit(id, specJSON, created)
		}
		if jerr != nil {
			if errors.Is(jerr, jobq.ErrClosed) {
				return View{}, ErrShuttingDown
			}
			m.lg.Warn("journal admit failed", "job", id, "error", jerr)
		}
	}

	// Assemble the connector stack before publishing the job, so every
	// field concurrent view() calls read is in place first.
	conn, cache := host.connFor(spec, m.cfg)
	j := &job{
		id:      id,
		spec:    spec,
		host:    u.Host,
		cache:   cache,
		state:   StateQueued,
		created: created,
	}
	//hdlint:ignore ctxflow a job outlives the submitting request; its lifetime is bounded by cancel via Stop/Close, not by any caller context
	j.ctx, j.cancel = context.WithCancel(context.Background())

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		// The admission is already journaled; record the cancellation so
		// a restart does not resurrect a job the caller was refused.
		j.cancel()
		if m.journal != nil {
			if jerr := m.journal.Terminal(id, 0, string(StateCanceled), "", "shutdown before start", nil); jerr != nil {
				m.lg.Warn("journal terminal append failed", "job", id, "error", jerr)
			}
		}
		return View{}, ErrShuttingDown
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.wg.Add(1)
	m.mu.Unlock()

	go m.run(j, conn)
	return j.view(), nil
}

// seqOf parses the numeric suffix of a job ID ("j-0042" → 42, ok).
func seqOf(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// restore rebuilds the job table from a journal replay: terminal jobs
// come back as read-only table entries (their sample sets lazy-load from
// the checkpoint pointer), interrupted jobs — queued or running at the
// crash — are requeued and resumed under a fresh lease epoch. Runs
// during construction, before the manager is published.
func (m *Manager) restore(rep *jobq.Replay) {
	if rep.Torn || rep.Fenced > 0 {
		m.lg.Warn("journal replay salvaged a crashed log",
			"records", rep.Records, "torn_tail", rep.Torn, "fenced", rep.Fenced)
	}
	// Replay order is commit order; concurrent submits may have committed
	// out of ID order, so re-sort for a stable table.
	jobs := append([]*jobq.JobRecord(nil), rep.Jobs...)
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	for _, jr := range jobs {
		if n, ok := seqOf(jr.ID); ok && n > m.seq {
			m.seq = n
		}
		var spec Spec
		if err := json.Unmarshal(jr.Spec, &spec); err != nil {
			m.lg.Error("journaled job spec unreadable; job dropped", "job", jr.ID, "error", err)
			continue
		}
		u, err := spec.normalize()
		if err != nil {
			m.lg.Error("journaled job spec invalid; job dropped", "job", jr.ID, "error", err)
			continue
		}

		j := &job{
			id:      jr.ID,
			spec:    spec,
			host:    u.Host,
			created: jr.Created,
			started: jr.Started,
			epoch:   jr.Epoch,
		}
		if term := jr.Terminal; term != nil {
			// Terminal jobs are inert table entries: no context, no conn.
			j.state = State(term.State)
			j.finished = term.At
			j.checkpoint = term.Pointer
			if term.Err != "" {
				j.err = errors.New(term.Err)
			}
			if term.Stats != nil {
				j.finalStats = statsFromCkpt(term.Stats)
			}
			j.cancel = func() {}
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			continue
		}

		// Interrupted job: adopt its last progress checkpoint (samples
		// already paid for resume for free) and requeue.
		j.state = StateQueued
		j.started = time.Time{}
		if jr.Ckpt != nil && spec.Method != MethodCrawl {
			j.adoptCheckpoint(jr.Ckpt, m.lg)
		}
		//hdlint:ignore ctxflow a requeued job outlives the restore; its lifetime is bounded by cancel via Cancel/Shutdown, not by any caller context
		j.ctx, j.cancel = context.WithCancel(context.Background())
		host := m.hostLocked(u.Host)
		conn, cache := host.connFor(spec, m.cfg)
		j.cache = cache
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.wg.Add(1)
		m.lg.Info("requeued interrupted job from journal",
			"job", j.id, "epoch", jr.Epoch, "accepted_base", len(j.baseTuples))
		go m.run(j, conn)
	}
}

// adoptCheckpoint decodes a replayed progress checkpoint into the job's
// resume base. The samples payload is authoritative: if it fails to
// decode, the sample counts are dropped (the job redraws everything) but
// the query bill is kept — the interface charges already happened, and
// the accounting must stay monotone across restarts.
func (j *job) adoptCheckpoint(ck *jobq.Checkpoint, lg *slog.Logger) {
	j.resumed = true
	j.baseStats = statsFromCkpt(ck)
	j.baseBills = append([]int64(nil), ck.Bills...)
	if len(ck.Samples) == 0 {
		j.baseStats.Accepted = 0
		return
	}
	set, err := store.Read(bytes.NewReader(ck.Samples))
	var schema *hdsampler.Schema
	var tuples []hdsampler.Tuple
	var reaches []float64
	if err == nil {
		schema, err = set.DecodeSchema()
	}
	if err == nil {
		tuples, reaches, err = set.DecodeSamples()
	}
	if err != nil {
		lg.Warn("checkpoint samples unreadable; job will redraw, bill preserved",
			"job", j.id, "error", err)
		j.baseStats.Accepted = 0
		j.baseBills = nil
		return
	}
	j.baseSchema = schema
	j.baseTuples = tuples
	j.baseReaches = reaches
	j.baseC = set.C
	j.baseStats.Accepted = int64(len(tuples))
}

// ckptFromStats converts sampler stats into a journal checkpoint's
// cumulative counters.
func ckptFromStats(s hdsampler.Stats) *jobq.Checkpoint {
	return &jobq.Checkpoint{
		Accepted:       s.Accepted,
		Candidates:     s.Candidates,
		Rejected:       s.Rejected,
		Queries:        s.Queries,
		QueriesSaved:   s.QueriesSaved,
		ElapsedSeconds: s.Elapsed.Seconds(),
	}
}

// statsFromCkpt is the inverse of ckptFromStats.
func statsFromCkpt(ck *jobq.Checkpoint) hdsampler.Stats {
	return hdsampler.Stats{
		Accepted:     ck.Accepted,
		Candidates:   ck.Candidates,
		Rejected:     ck.Rejected,
		Queries:      ck.Queries,
		QueriesSaved: ck.QueriesSaved,
		Elapsed:      time.Duration(ck.ElapsedSeconds * float64(time.Second)),
	}
}

// hostLocked returns (creating on first use) the entry for host; the
// caller holds m.mu.
func (m *Manager) hostLocked(host string) *hostEntry {
	he, ok := m.hosts[host]
	if !ok {
		he = &hostEntry{
			host:    host,
			targets: make(map[string]*target),
			wire:    m.wireHist.With(host),
			execH:   m.execHist.With(host),
			lookup:  m.cacheHist.With(host),
		}
		if m.cfg.HostRatePerSec > 0 || m.cfg.HostMaxInFlight > 0 {
			he.limiter = queryexec.NewLimiter(queryexec.LimiterOptions{
				MaxInFlight: m.cfg.HostMaxInFlight,
				RatePerSec:  m.cfg.HostRatePerSec,
				Burst:       m.cfg.HostBurst,
			})
		}
		m.hosts[host] = he
	}
	return he
}

// connFor assembles the job's connector stack: base conn (shared per
// target URL) → shared execution layer (coalescing, micro-batching,
// host-wide AIMD admission) → shared history cache (unless opted out) →
// per-job query budget. A cache created here is warm-started from its
// HistoryDir checkpoint, when one exists.
func (he *hostEntry) connFor(spec Spec, cfg Config) (formclient.Conn, *history.Cache) {
	key := spec.Connector + "|" + spec.URL

	he.mu.Lock()
	tg, ok := he.targets[key]
	if !ok {
		var base formclient.Conn
		opts := formclient.HTTPOptions{Client: cfg.Client}
		if spec.Connector == ConnectorAPI {
			base = formclient.NewAPI(spec.URL, opts)
		} else {
			base = formclient.NewHTTP(spec.URL, opts)
		}
		var fault faultform.Faulty
		if prof, ok := faultProfile(cfg); ok {
			// Chaos mode: the adversarial wrapper plays the misbehaving
			// site, below the execution layer, so the AIMD limiter and the
			// retry paths absorb the injected rudeness exactly as they
			// would the real thing.
			fault = faultform.Wrap(base, prof, faultSeed(cfg.FaultSeed, key))
			base = fault
		}
		exec := queryexec.New(base, queryexec.Options{
			BatchLinger: cfg.BatchLinger,
			MaxBatch:    cfg.BatchMax,
			Limiter:     he.limiter,
			Wire:        he.wire,
			ExecLatency: he.execH,
		})
		tg = &target{key: key, conn: exec, exec: exec, fault: fault, caches: make(map[bool]*history.Cache)}
		he.targets[key] = tg
	}
	var conn formclient.Conn = tg.conn
	cache, haveCache := tg.caches[spec.TrustCounts]
	he.mu.Unlock()

	if !spec.NoHistory {
		if !haveCache {
			// Build — and, when configured, warm-start — the cache before
			// publishing it, so no job ever draws through a half-restored
			// cache and no stale checkpoint entry can overwrite an answer
			// a live job just paid for.
			fresh := history.New(tg.conn, history.Options{
				TrustCounts: spec.TrustCounts,
				MaxEntries:  cfg.CacheMaxEntries,
				Lookup:      he.lookup,
			})
			if cfg.HistoryDir != "" {
				warmStartCache(cfg.HistoryDir, historySource(key, spec.TrustCounts), fresh, cfg.logger())
			}
			he.mu.Lock()
			if racer, ok := tg.caches[spec.TrustCounts]; ok {
				cache = racer // a concurrent submit won; ours is discarded
			} else {
				tg.caches[spec.TrustCounts] = fresh
				cache = fresh
			}
			he.mu.Unlock()
		}
		conn = cache
	} else {
		cache = nil
	}

	if spec.MaxQueries > 0 && spec.Method != MethodCrawl {
		conn = &budgetConn{inner: conn, budget: spec.MaxQueries}
	}
	return conn, cache
}

// faultProfile resolves the configured fault preset; ok is false when
// injection is off (empty, "none", or an unknown name — logged once per
// submit path would be noisy, so unknown names log here and disable).
func faultProfile(cfg Config) (faultform.Profile, bool) {
	if cfg.FaultProfile == "" || cfg.FaultProfile == "none" {
		return faultform.Profile{}, false
	}
	p, ok := faultform.Preset(cfg.FaultProfile)
	if !ok {
		cfg.logger().Warn("unknown fault profile; fault injection disabled",
			"component", "jobsvc", "profile", cfg.FaultProfile, "known", fmt.Sprint(faultform.PresetNames()))
		return faultform.Profile{}, false
	}
	return p, true
}

// faultSeed derives a target's fault stream from the daemon seed and the
// target identity, so two targets never replay one misbehaviour script.
func faultSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64())
}

// historySource names one cache identity for checkpointing: the target
// key plus the trust mode (trusted and untrusted caches infer
// differently and must not adopt each other's checkpoints).
func historySource(targetKey string, trust bool) string {
	return targetKey + "|trust=" + strconv.FormatBool(trust)
}

// historyDumpPath maps a cache identity onto its checkpoint file.
func historyDumpPath(dir, source string) string {
	h := fnv.New64a()
	h.Write([]byte(source))
	return filepath.Join(dir, fmt.Sprintf("history-%016x.json", h.Sum64()))
}

// warmStartCache best-effort restores a freshly created cache from its
// checkpoint; failures only cost the warm start, never the job.
func warmStartCache(dir, source string, cache *history.Cache, lg *slog.Logger) {
	lg = lg.With("component", "jobsvc", "source", source)
	path := historyDumpPath(dir, source)
	dump, err := store.LoadHistoryFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			lg.Warn("history warm-start failed", "path", path, "error", err)
		}
		return
	}
	if dump.Source != source {
		lg.Warn("history warm-start skipped: checkpoint identity mismatch",
			"path", path, "checkpoint_source", dump.Source)
		return
	}
	//hdlint:ignore ctxflow warm-start runs during construction, before any request context exists; the timeout is its only bound
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	n, err := cache.Restore(ctx, dump.Snapshot())
	if err != nil {
		lg.Warn("history warm-start failed", "path", path, "error", err)
		return
	}
	lg.Info("warm-started history cache", "entries", n)
}

// dumpHistory checkpoints every shared cache to HistoryDir.
func (m *Manager) dumpHistory() {
	if m.cfg.HistoryDir == "" {
		return
	}
	if err := os.MkdirAll(m.cfg.HistoryDir, 0o755); err != nil {
		m.lg.Warn("history checkpoint dir", "dir", m.cfg.HistoryDir, "error", err)
		return
	}
	m.mu.Lock()
	hes := make([]*hostEntry, 0, len(m.hosts))
	for _, he := range m.hosts {
		hes = append(hes, he)
	}
	m.mu.Unlock()
	for _, he := range hes {
		he.mu.Lock()
		type dumpTask struct {
			source string
			cache  *history.Cache
		}
		var tasks []dumpTask
		for _, tg := range he.targets {
			for trust, c := range tg.caches {
				tasks = append(tasks, dumpTask{historySource(tg.key, trust), c})
			}
		}
		he.mu.Unlock()
		for _, t := range tasks {
			if t.cache.Len() == 0 {
				continue
			}
			dump := store.NewHistoryDump(t.source, t.cache.Dump())
			path := historyDumpPath(m.cfg.HistoryDir, t.source)
			if err := store.SaveHistoryFile(path, dump); err != nil {
				m.lg.Warn("history checkpoint failed", "path", path, "error", err)
			}
		}
	}
}

// run executes one job to completion; it owns the job's state machine.
func (m *Manager) run(j *job, conn formclient.Conn) {
	defer m.wg.Done()

	// Acquire a run slot; cancellation while queued finishes the job
	// without ever running it.
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-j.ctx.Done():
		j.finish(m, nil, hdsampler.Stats{}, j.ctx.Err())
		return
	}

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now().UTC()
	if j.cache != nil {
		j.savedAt0 = j.cache.CacheStats().Saved()
	}
	j.mu.Unlock()

	// Take the run's lease epoch: every checkpoint and the terminal
	// record carry it, so a zombie writer from a superseded run is fenced
	// at the journal.
	var epoch int64
	if m.journal != nil {
		ep, err := m.journal.Lease(j.id)
		if err != nil {
			m.lg.Warn("journal lease failed; job runs unfenced", "job", j.id, "error", err)
		} else {
			epoch = ep
			j.mu.Lock()
			j.epoch = ep
			j.mu.Unlock()
		}
	}

	if j.spec.Method == MethodCrawl {
		m.runCrawl(j, conn)
		return
	}

	// A resumed job draws only what its adopted checkpoint is missing.
	remaining := j.spec.N - len(j.baseTuples)
	if remaining <= 0 {
		set, serr := j.sampleSet(j.baseSchema, j.baseSamples(), j.baseC, j.baseStats.Queries)
		j.finish(m, set, hdsampler.Stats{}, serr)
		return
	}

	cfg := hdsampler.Config{
		Seed:         j.spec.Seed,
		C:            j.spec.C,
		K:            j.spec.K,
		ShuffleOrder: !j.spec.NoShuffle,
		// History, when on, is already in the conn stack (shared across
		// jobs); the replicas must not wrap another cache on top. The
		// same goes for the execution layer: the shared per-host
		// executor sits below the caches.
		UseHistory: false,
		Exec:       hdsampler.ExecConfig{Disable: true},
		// One observer per job: the duration histogram series carries the
		// job label, while the tracer, slow-walk counter and logger are the
		// daemon-wide instruments. Replicas share it (its instruments are
		// concurrency-safe).
		Obs: &telemetry.WalkObserver{
			Tracer:      m.tracer,
			Duration:    m.walkHist.With(j.id),
			SlowWalk:    m.cfg.SlowWalk,
			SlowQueries: m.cfg.SlowWalkQueries,
			SlowCount:   m.slowWalks,
			Logger:      m.lg,
			Job:         j.id,
			Host:        j.host,
		},
	}
	if j.spec.Slider != nil {
		cfg.Slider = *j.spec.Slider
		cfg.SliderSet = true
	}
	if j.spec.Method == MethodWeighted {
		cfg.Method = hdsampler.MethodCountWeighted
		cfg.UseParentCount = j.spec.TrustCounts
	}
	if epoch > 1 {
		// Resumed run: perturb the seed per epoch so the redraw explores
		// fresh walk randomness instead of replaying the crashed run's
		// prefix (which would re-pay its query bill walk for walk). The
		// first run (epoch 1) keeps the spec seed exactly.
		cfg.Seed = j.spec.Seed + (epoch-1)*1_000_003
	}
	rs, err := hdsampler.NewReplicaSet(j.ctx, conn, cfg, j.spec.Workers)
	if err != nil {
		j.finish(m, nil, hdsampler.Stats{}, err)
		return
	}
	j.mu.Lock()
	j.rs = rs
	j.mu.Unlock()

	// Journal progress periodically while the pool draws. The loop stops
	// (and is awaited) before finish, so no checkpoint can race the
	// terminal record.
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	if m.journal != nil && m.cfg.CheckpointEvery > 0 {
		go m.checkpointLoop(j, stop, ckptDone)
	} else {
		close(ckptDone)
	}

	_, stats, err := rs.Draw(j.ctx, remaining)
	close(stop)
	<-ckptDone
	set, serr := j.sampleSet(rs.Schema(), j.cumulativeSamples(rs.Samples()), rs.C(), j.baseStats.Queries+stats.Queries)
	if err == nil {
		err = serr
	}
	j.finish(m, set, stats, err)
}

// baseSamples rebuilds the resume base as sampler samples.
func (j *job) baseSamples() []hdsampler.Sample {
	out := make([]hdsampler.Sample, len(j.baseTuples))
	for i, t := range j.baseTuples {
		out[i] = hdsampler.Sample{Tuple: t, Reach: j.baseReaches[i]}
	}
	return out
}

// cumulativeSamples prepends the resume base to a live sample snapshot.
func (j *job) cumulativeSamples(live []hdsampler.Sample) []hdsampler.Sample {
	if len(j.baseTuples) == 0 {
		return live
	}
	return append(j.baseSamples(), live...)
}

// checkpointLoop journals the job's cumulative progress every
// CheckpointEvery until stopped; done closes when the loop exits.
func (m *Manager) checkpointLoop(j *job, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(m.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.checkpointOnce(j)
		}
	}
}

// checkpointOnce journals one cumulative progress checkpoint: resume
// base plus live pool progress, the per-candidate query bills, and the
// accepted samples as a serialized store.SampleSet.
func (m *Manager) checkpointOnce(j *job) {
	j.mu.Lock()
	rs, epoch := j.rs, j.epoch
	var saved int64
	if j.cache != nil {
		saved = j.cache.CacheStats().Saved() - j.savedAt0
	}
	j.mu.Unlock()
	if rs == nil {
		return
	}
	live := rs.Progress()
	live.QueriesSaved = saved
	samples := rs.Samples()

	cum := j.baseStats
	cum.Accepted += live.Accepted
	cum.Candidates += live.Candidates
	cum.Rejected += live.Rejected
	cum.Queries += live.Queries
	cum.QueriesSaved += live.QueriesSaved
	cum.Elapsed += live.Elapsed
	ck := ckptFromStats(cum)

	ck.Bills = append(append([]int64(nil), j.baseBills...), make([]int64, len(samples))...)
	for i, s := range samples {
		ck.Bills[len(j.baseBills)+i] = int64(s.Queries)
	}

	set, err := j.sampleSet(rs.Schema(), j.cumulativeSamples(samples), rs.C(), cum.Queries)
	if err != nil {
		m.lg.Warn("progress checkpoint skipped: sample set", "job", j.id, "error", err)
		return
	}
	if set != nil {
		var buf bytes.Buffer
		if err := set.Write(&buf); err != nil {
			m.lg.Warn("progress checkpoint skipped: encode", "job", j.id, "error", err)
			return
		}
		ck.Samples = buf.Bytes()
	}
	if err := m.journal.Checkpoint(j.id, epoch, ck); err != nil {
		m.lg.Warn("progress checkpoint rejected", "job", j.id, "error", err)
		return
	}
	// Piggyback a throttled history dump so the shared caches also
	// survive kill-9, not just graceful shutdown.
	m.maybeDumpHistory()
}

// maybeDumpHistory runs dumpHistory at most once per throttle window.
func (m *Manager) maybeDumpHistory() {
	if m.cfg.HistoryDir == "" {
		return
	}
	const every = 5 * time.Second
	m.histMu.Lock()
	if time.Since(m.lastHistDump) < every {
		m.histMu.Unlock()
		return
	}
	m.lastHistDump = time.Now()
	m.histMu.Unlock()
	m.dumpHistory()
}

// runCrawl executes a full-extraction job.
func (m *Manager) runCrawl(j *job, conn formclient.Conn) {
	start := time.Now()
	c, err := core.NewCrawler(j.ctx, conn, core.CrawlerConfig{MaxQueries: j.spec.MaxQueries})
	if err != nil {
		j.finish(m, nil, hdsampler.Stats{}, err)
		return
	}
	j.mu.Lock()
	j.crawler = c
	j.mu.Unlock()

	tuples, err := c.Run(j.ctx)
	stats := hdsampler.Stats{
		Accepted:   int64(len(tuples)),
		Candidates: int64(len(tuples)),
		Queries:    c.Queries(),
		Elapsed:    time.Since(start),
	}
	schema, serr := conn.Schema(j.ctx)
	var set *store.SampleSet
	if serr == nil {
		samples := make([]hdsampler.Sample, len(tuples))
		for i, t := range tuples {
			samples[i] = hdsampler.Sample{Tuple: t}
		}
		set, serr = j.sampleSet(schema, samples, 1, stats.Queries)
	}
	if err == nil {
		err = serr
	}
	j.finish(m, set, stats, err)
}

// sampleSet packages accepted samples as a persistable store.SampleSet;
// nil (with no error) when there are no samples to keep.
func (j *job) sampleSet(schema *hdsampler.Schema, samples []hdsampler.Sample, c float64, queries int64) (*store.SampleSet, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	tuples := make([]hdsampler.Tuple, len(samples))
	reaches := make([]float64, len(samples))
	for i, s := range samples {
		tuples[i] = s.Tuple
		reaches[i] = s.Reach
	}
	return store.New(j.spec.URL, j.spec.Method, c, schema, tuples, reaches, queries)
}

// finish records the terminal state, checkpoints the sample set and
// journals the terminal transition.
func (j *job) finish(m *Manager, set *store.SampleSet, stats hdsampler.Stats, err error) {
	j.mu.Lock()
	if j.cache != nil {
		stats.QueriesSaved = j.cache.CacheStats().Saved() - j.savedAt0
	}
	if j.resumed {
		// Fold in the progress an earlier epoch already paid for. The
		// sample set (when the run produced one) is already cumulative;
		// a run that died before producing a set keeps the base samples.
		stats.Accepted += j.baseStats.Accepted
		stats.Candidates += j.baseStats.Candidates
		stats.Rejected += j.baseStats.Rejected
		stats.Queries += j.baseStats.Queries
		stats.QueriesSaved += j.baseStats.QueriesSaved
		stats.Elapsed += j.baseStats.Elapsed
		if set == nil && len(j.baseTuples) > 0 {
			if base, berr := j.sampleSet(j.baseSchema, j.baseSamples(), j.baseC, j.baseStats.Queries); berr == nil {
				set = base
			}
		}
	}
	j.finished = time.Now().UTC()
	j.finalStats = stats
	j.set = set
	switch {
	case j.cancelled || errors.Is(err, context.Canceled):
		j.state = StateCanceled
		if err == nil || errors.Is(err, context.Canceled) {
			err = nil
		}
	case err != nil:
		j.state = StateFailed
	default:
		j.state = StateCompleted
	}
	j.err = err
	// Release the replica machinery: terminal views read finalStats and
	// j.set, and a long-running daemon must not retain every finished
	// job's samplers, pipelines and duplicate sample slices.
	j.rs = nil
	j.crawler = nil
	id := j.id
	j.mu.Unlock()

	if m.cfg.DataDir != "" && set != nil {
		path := filepath.Join(m.cfg.DataDir, id+".json")
		perr := os.MkdirAll(m.cfg.DataDir, 0o755)
		if perr == nil {
			perr = store.SaveFile(path, set)
		}
		j.mu.Lock()
		if perr != nil {
			// Keep the terminal state but surface the broken durability on
			// the view and in the daemon log.
			m.lg.Warn("sample checkpoint failed", "job", id, "path", path, "error", perr)
			if j.err == nil {
				j.err = fmt.Errorf("checkpoint: %w", perr)
			}
		} else {
			j.checkpoint = path
		}
		j.mu.Unlock()
	}

	// Journal the terminal transition (after persisting, so the record
	// carries the checkpoint pointer). The journal mutex is a leaf: never
	// called with j.mu or m.mu held.
	if m.journal != nil {
		j.mu.Lock()
		state, ptr, epoch, fs := j.state, j.checkpoint, j.epoch, j.finalStats
		var errMsg string
		if j.err != nil {
			errMsg = j.err.Error()
		}
		j.mu.Unlock()
		if jerr := m.journal.Terminal(id, epoch, string(state), ptr, errMsg, ckptFromStats(fs)); jerr != nil {
			m.lg.Warn("journal terminal append failed", "job", id, "error", jerr)
		}
	}
	m.maybeDumpHistory()
}

// view snapshots the job, folding in live pool progress while running.
func (j *job) view() View {
	j.mu.Lock()
	v := View{
		ID:      j.id,
		State:   j.state,
		Spec:    j.spec,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	v.Checkpoint = j.checkpoint
	v.Epoch = j.epoch
	rs, crawler := j.rs, j.crawler
	terminal := j.state.Terminal()
	stats := j.finalStats
	cache, savedAt0 := j.cache, j.savedAt0
	started := j.started
	j.mu.Unlock()

	switch {
	case terminal:
	case rs != nil:
		stats = rs.Progress()
		if cache != nil {
			stats.QueriesSaved = cache.CacheStats().Saved() - savedAt0
		}
		if j.resumed {
			// Fold in the replayed base so a resumed job's live view never
			// regresses below what the journal already committed.
			stats.Accepted += j.baseStats.Accepted
			stats.Candidates += j.baseStats.Candidates
			stats.Rejected += j.baseStats.Rejected
			stats.Queries += j.baseStats.Queries
			stats.QueriesSaved += j.baseStats.QueriesSaved
			stats.Elapsed += j.baseStats.Elapsed
		}
	case crawler != nil:
		stats = hdsampler.Stats{Queries: crawler.Queries()}
		if !started.IsZero() {
			stats.Elapsed = time.Since(started)
		}
	case j.resumed:
		// Requeued after a crash, not yet running: show the replayed base
		// so the committed progress never disappears from the API.
		stats = j.baseStats
	}
	v.Accepted = stats.Accepted
	v.Candidates = stats.Candidates
	v.Rejected = stats.Rejected
	v.Queries = stats.Queries
	v.QueriesSaved = stats.QueriesSaved
	if stats.Candidates > 0 {
		v.AcceptanceRate = float64(stats.Accepted) / float64(stats.Candidates)
	}
	v.ElapsedSeconds = stats.Elapsed.Seconds()
	return v
}

// Jobs lists every job in submission order.
func (m *Manager) Jobs() []View {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]View, len(js))
	for i, j := range js {
		out[i] = j.view()
	}
	return out
}

// Job returns one job's snapshot.
func (m *Manager) Job(id string) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// Cancel stops a queued or running job; cancelling a terminal job is a
// no-op. The job transitions to canceled once its workers drain.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelled = true
	}
	j.mu.Unlock()
	j.cancel()
	return j.view(), nil
}

// SampleSet returns a job's samples as a persistable set: the final set
// for terminal jobs, a live snapshot for running ones.
func (m *Manager) SampleSet(id string) (*store.SampleSet, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	set, rs := j.set, j.rs
	terminal := j.state.Terminal()
	ptr := j.checkpoint
	j.mu.Unlock()
	if terminal {
		if set == nil && ptr != "" {
			// A journal-restored terminal job keeps only the checkpoint
			// pointer; load (and cache) the set on first request.
			loaded, err := store.LoadFile(ptr)
			if err != nil {
				return nil, fmt.Errorf("jobsvc: load checkpoint %s: %w", ptr, err)
			}
			j.mu.Lock()
			if j.set == nil {
				j.set = loaded
			}
			set = j.set
			j.mu.Unlock()
			return set, nil
		}
		if set == nil {
			return nil, ErrNoSamples
		}
		return set, nil
	}
	if rs == nil {
		return nil, ErrNoSamples
	}
	live, err := j.sampleSet(rs.Schema(), rs.Samples(), rs.C(), rs.Progress().Queries)
	if err != nil {
		return nil, err
	}
	if live == nil {
		return nil, ErrNoSamples
	}
	return live, nil
}

// HostStats aggregates one host's shared-infrastructure counters.
type HostStats struct {
	Host string `json:"host"`
	// Issued / ExactHits / Inferred / Evictions sum the host's history
	// caches.
	Issued    int64 `json:"issued"`
	ExactHits int64 `json:"exact_hits"`
	Inferred  int64 `json:"inferred"`
	Evictions int64 `json:"evictions"`
	// Entries is the total cached query count (Protected the pinned
	// subset), Throttled the wire requests the admission limiter had to
	// delay for the politeness budget.
	Entries   int   `json:"entries"`
	Protected int   `json:"protected"`
	Throttled int64 `json:"throttled"`
	// Coalesced / Batched / BatchRequests / WireCalls sum the host's
	// execution-layer savings: queries answered by joining identical
	// in-flight queries, queries shipped inside shared batch requests,
	// the batch wire requests themselves, and total wire executions.
	// TransientRetries counts wire executions the layer repeated after
	// transient interface faults.
	Coalesced        int64 `json:"coalesced"`
	Batched          int64 `json:"batched"`
	BatchRequests    int64 `json:"batch_requests"`
	WireCalls        int64 `json:"wire_calls"`
	TransientRetries int64 `json:"transient_retries"`
	// Faults sums the misbehaviour the configured fault profile injected
	// into this host's targets (all zero without a profile).
	Faults faultform.Stats `json:"faults"`
	// InFlight and Limit snapshot the host's admission controller: wire
	// requests currently running and the AIMD concurrency window (0 when
	// concurrency limiting is off). Backoffs counts 429-pushback window
	// cuts.
	InFlight int     `json:"in_flight"`
	Limit    float64 `json:"limit"`
	Backoffs int64   `json:"backoffs"`
	// ShardBalance summarizes per-shard entry counts across the host's
	// caches: CV 0 means the shards carry identical load.
	ShardBalance metrics.Summary `json:"shard_balance"`
}

// Saved is the host's total query-history savings.
func (h HostStats) Saved() int64 { return h.ExactHits + h.Inferred }

// Hosts reports per-host cache and politeness stats, sorted by host.
func (m *Manager) Hosts() []HostStats {
	m.mu.Lock()
	hes := make([]*hostEntry, 0, len(m.hosts))
	for _, he := range m.hosts {
		hes = append(hes, he)
	}
	m.mu.Unlock()
	out := make([]HostStats, 0, len(hes))
	for _, he := range hes {
		hs := HostStats{Host: he.host}
		if he.limiter != nil {
			hs.Throttled = he.limiter.Waits()
			hs.Backoffs = he.limiter.Backoffs()
			hs.InFlight = he.limiter.InFlight()
			hs.Limit = he.limiter.Limit()
		}
		var shardLoads []float64
		he.mu.Lock()
		caches := make([]*history.Cache, 0, len(he.targets))
		for _, tg := range he.targets {
			xs := tg.exec.ExecStats()
			hs.Coalesced += xs.Coalesced
			hs.Batched += xs.Batched
			hs.BatchRequests += xs.BatchRequests
			hs.WireCalls += xs.WireCalls
			hs.TransientRetries += xs.TransientRetries
			if tg.fault != nil {
				fs := tg.fault.FaultStats()
				hs.Faults.RateLimited += fs.RateLimited
				hs.Faults.Exhausted429s += fs.Exhausted429s
				hs.Faults.Transients += fs.Transients
				hs.Faults.Jittered += fs.Jittered
				hs.Faults.Reordered += fs.Reordered
				hs.Faults.RoundedCounts += fs.RoundedCounts
				hs.Faults.SlowCalls += fs.SlowCalls
			}
			for _, c := range tg.caches {
				caches = append(caches, c)
			}
		}
		he.mu.Unlock()
		for _, c := range caches {
			cs := c.CacheStats()
			hs.Issued += cs.Issued
			hs.ExactHits += cs.ExactHits
			hs.Inferred += cs.Inferred
			hs.Evictions += cs.Evictions
			for _, ss := range c.ShardStats() {
				hs.Entries += ss.Entries
				hs.Protected += ss.Protected
				shardLoads = append(shardLoads, float64(ss.Entries))
			}
		}
		hs.ShardBalance = metrics.Summarize(shardLoads)
		out = append(out, hs)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Host < out[k].Host })
	return out
}

// Health summarizes the manager's durability state for /healthz.
type Health struct {
	// Status is "ok", or "degraded" when configured durability is not
	// actually protecting jobs (journal failed to open or lost its disk).
	Status string `json:"status"`
	// Journal is "off" (no JournalDir), "ok", "degraded" (disk failure,
	// memory-only since), or "unavailable" (failed to open at startup).
	Journal string `json:"journal"`
	// JournalStats carries the live journal counters when a journal is
	// running.
	JournalStats *jobq.Stats `json:"journal_stats,omitempty"`
	// Jobs is the job-table size; Draining reports shutdown in progress.
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
}

// Health reports the manager's durability health.
func (m *Manager) Health() Health {
	m.mu.Lock()
	jobs, closed := len(m.jobs), m.closed
	m.mu.Unlock()
	h := Health{Status: "ok", Journal: "off", Jobs: jobs, Draining: closed}
	if m.journalBroken {
		h.Status = "degraded"
		h.Journal = "unavailable"
	}
	if m.journal != nil {
		st := m.journal.Stats()
		h.JournalStats = &st
		if st.Degraded {
			h.Status = "degraded"
			h.Journal = "degraded"
		} else {
			h.Journal = "ok"
		}
	}
	return h
}

// JournalStats snapshots the journal counters (zero value without a
// journal), for /metrics.
func (m *Manager) JournalStats() jobq.Stats {
	if m.journal == nil {
		return jobq.Stats{}
	}
	return m.journal.Stats()
}

// Shutdown stops accepting jobs, cancels everything queued or running and
// waits (bounded by ctx) for the workers to drain; partial sample sets
// are persisted by each job's normal finish path, and each cancellation
// is journaled as a terminal transition — a gracefully stopped job is
// not requeued on restart, only a killed one is.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	for _, j := range js {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.cancelled = true
		}
		j.mu.Unlock()
		j.cancel()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		m.dumpHistory()
	case <-ctx.Done():
		// Checkpoint what we can even on an overrun drain; Dump is safe
		// while stragglers still write.
		m.dumpHistory()
		err = fmt.Errorf("jobsvc: shutdown: %w", ctx.Err())
	}
	if m.journal != nil {
		// After the drain every terminal record is in; stragglers past an
		// overrun deadline lose their terminal append (logged) and are
		// requeued on restart — the safe direction.
		if cerr := m.journal.Close(); cerr != nil {
			m.lg.Warn("journal close", "error", cerr)
		}
	}
	return err
}
