package jobsvc

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

// newTarget boots an in-process webform server over a fresh vehicles DB.
func newTarget(t *testing.T, n, k int, mode hiddendb.CountMode) (*hiddendb.DB, *httptest.Server) {
	t.Helper()
	ds := datagen.Vehicles(n, 21)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	t.Cleanup(srv.Close)
	return db, srv
}

func newTestManager(t *testing.T, srv *httptest.Server, cfg Config) *Manager {
	t.Helper()
	cfg.Client = srv.Client()
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return m
}

// waitJob polls until pred holds or the deadline passes.
func waitJob(t *testing.T, m *Manager, id string, timeout time.Duration, pred func(View) bool) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, err := m.Job(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timed out waiting; last view %+v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" = valid
	}{
		{"valid defaults", Spec{URL: "http://x.test", N: 5}, ""},
		{"missing url", Spec{N: 5}, "missing target url"},
		{"relative url", Spec{URL: "x.test/form", N: 5}, "absolute http"},
		{"bad connector", Spec{URL: "http://x.test", N: 5, Connector: "ftp"}, "unknown connector"},
		{"bad method", Spec{URL: "http://x.test", N: 5, Method: "exhaustive"}, "unknown method"},
		{"zero n", Spec{URL: "http://x.test"}, "need > 0"},
		{"crawl without n", Spec{URL: "http://x.test", Method: MethodCrawl}, ""},
		{"bad slider", Spec{URL: "http://x.test", N: 5, Slider: ptr(1.5)}, "slider"},
		{"explicit zero slider", Spec{URL: "http://x.test", N: 5, Slider: ptr(0.0)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec
			_, err := spec.normalize()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if spec.Connector == "" || spec.Method == "" || spec.Workers < 1 {
					t.Fatalf("defaults not filled: %+v", spec)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// ptr returns a pointer to v, for optional Spec fields.
func ptr(v float64) *float64 { return &v }

func TestBudgetConn(t *testing.T) {
	ds := datagen.Vehicles(10, 1)
	inner := &fakeConn{schema: ds.Schema}
	b := &budgetConn{inner: inner, budget: 3}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := b.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
			t.Fatalf("query %d within budget failed: %v", i, err)
		}
	}
	if _, err := b.Execute(ctx, hiddendb.EmptyQuery()); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget query: %v", err)
	}
}

type fakeConn struct {
	schema *hiddendb.Schema
	execs  atomic.Int64
}

func (c *fakeConn) Schema(ctx context.Context) (*hiddendb.Schema, error) { return c.schema, nil }
func (c *fakeConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	c.execs.Add(1)
	return &hiddendb.Result{Count: hiddendb.CountAbsent}, nil
}
func (c *fakeConn) Stats() formclient.Stats {
	return formclient.Stats{Queries: c.execs.Load()}
}

func TestJobBudgetExhaustionKeepsPartialSamples(t *testing.T) {
	_, srv := newTarget(t, 2000, 250, hiddendb.CountNone)
	m := newTestManager(t, srv, Config{DataDir: t.TempDir()})
	v, err := m.Submit(Spec{URL: srv.URL, N: 100000, Workers: 2, Seed: 5, MaxQueries: 60})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 30*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "budget") {
		t.Fatalf("error = %q, want budget exhaustion", v.Error)
	}
	if v.Accepted == 0 {
		t.Fatal("budgeted job accepted no samples before failing")
	}
	// The partial set survives: in memory and on disk.
	set, err := m.SampleSet(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(set.Samples)) != v.Accepted {
		t.Fatalf("partial set has %d samples, view says %d", len(set.Samples), v.Accepted)
	}
	if v.Checkpoint == "" {
		t.Fatal("partial set not checkpointed")
	}
}

func TestQueueRespectsMaxConcurrent(t *testing.T) {
	_, srv := newTarget(t, 2000, 250, hiddendb.CountNone)
	m := newTestManager(t, srv, Config{MaxConcurrent: 1})
	long, err := m.Submit(Spec{URL: srv.URL, N: 1000000, Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, long.ID, 10*time.Second, func(v View) bool { return v.State == StateRunning })
	small, err := m.Submit(Spec{URL: srv.URL, N: 5, Workers: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The single slot is held: the second job must still be queued.
	time.Sleep(50 * time.Millisecond)
	if v, _ := m.Job(small.ID); v.State != StateQueued {
		t.Fatalf("second job state = %s, want queued behind the slot", v.State)
	}
	if _, err := m.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, small.ID, 30*time.Second, func(v View) bool { return v.State == StateCompleted })
}

func TestShutdownDrainsAndPersistsPartials(t *testing.T) {
	_, srv := newTarget(t, 2000, 250, hiddendb.CountNone)
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Client: srv.Client()}
	m := NewManager(cfg)
	v, err := m.Submit(Spec{URL: srv.URL, N: 1000000, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m, v.ID, 30*time.Second, func(v View) bool { return v.Accepted > 0 })
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state after shutdown = %s, want canceled", got.State)
	}
	if got.Accepted == 0 || got.Checkpoint == "" {
		t.Fatalf("partial samples not persisted: %+v", got)
	}
	if _, err := m.Submit(Spec{URL: srv.URL, N: 5}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v, want ErrShuttingDown", err)
	}
}

func TestCrawlJob(t *testing.T) {
	db, srv := newTarget(t, 400, 50, hiddendb.CountNone)
	m := newTestManager(t, srv, Config{})
	v, err := m.Submit(Spec{URL: srv.URL, Method: MethodCrawl, Connector: ConnectorAPI})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 60*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCompleted {
		t.Fatalf("crawl state = %s (%s)", v.State, v.Error)
	}
	if v.Accepted == 0 || v.Accepted > int64(db.Size()) {
		t.Fatalf("crawl extracted %d of %d tuples", v.Accepted, db.Size())
	}
	set, err := m.SampleSet(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != int(v.Accepted) {
		t.Fatalf("set has %d samples, view says %d", len(set.Samples), v.Accepted)
	}
}

func TestWeightedJobAgainstCountingInterface(t *testing.T) {
	_, srv := newTarget(t, 1500, 200, hiddendb.CountExact)
	m := newTestManager(t, srv, Config{})
	v, err := m.Submit(Spec{URL: srv.URL, Method: MethodWeighted, N: 20, Workers: 2, Seed: 4, TrustCounts: true})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 60*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCompleted || v.Accepted != 20 {
		t.Fatalf("weighted job: %+v", v)
	}
}

func TestPolitenessThrottleCounts(t *testing.T) {
	_, srv := newTarget(t, 1000, 150, hiddendb.CountNone)
	// A tight budget (50/s, burst 1): even under -race slowdown the
	// concurrent workers must outpace the meter and be delayed.
	m := newTestManager(t, srv, Config{HostRatePerSec: 50, HostBurst: 1})
	v, err := m.Submit(Spec{URL: srv.URL, N: 15, Workers: 3, Seed: 6, NoHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 60*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCompleted {
		t.Fatalf("throttled job: %+v", v)
	}
	hosts := m.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("hosts = %d, want 1", len(hosts))
	}
	if hosts[0].Throttled == 0 {
		t.Fatal("politeness limiter never delayed a query at 50 q/s with burst 1")
	}
}

// TestExecLayerBatchesAcrossWorkers drives a replica pool through the
// daemon's shared execution layer with micro-batching on: the host's
// wire bill must come in under the workers' logical query bill, and the
// exec counters must show why.
func TestExecLayerBatchesAcrossWorkers(t *testing.T) {
	_, srv := newTarget(t, 1500, 200, hiddendb.CountNone)
	m := newTestManager(t, srv, Config{
		BatchLinger:     2 * time.Millisecond,
		BatchMax:        16,
		HostMaxInFlight: 8,
	})
	v, err := m.Submit(Spec{URL: srv.URL, Connector: ConnectorAPI, N: 48, Workers: 8, Seed: 9, NoHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	v = waitJob(t, m, v.ID, 60*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCompleted {
		t.Fatalf("job: %+v", v)
	}
	hosts := m.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	hs := hosts[0]
	if hs.Coalesced+hs.Batched == 0 {
		t.Fatalf("execution layer idle: %+v", hs)
	}
	if hs.WireCalls == 0 || hs.WireCalls >= v.Queries {
		t.Fatalf("wire calls = %d for %d logical queries; no amortization", hs.WireCalls, v.Queries)
	}
	if hs.Limit <= 0 || hs.Limit > 8 {
		t.Fatalf("AIMD window = %g, want in (0, 8]", hs.Limit)
	}
	// A straggler batch flush may still be draining right after the job
	// turns terminal (abandoned waiters do not cancel the shared flush);
	// the gauge must settle to zero, not leak slots.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if inFlight := m.Hosts()[0].InFlight; inFlight == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("in-flight never drained: %d", inFlight)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHistoryCheckpointAndWarmStart(t *testing.T) {
	_, srv := newTarget(t, 2000, 500, hiddendb.CountNone)
	histDir := t.TempDir()
	cfg := Config{HistoryDir: histDir, Client: srv.Client()}

	// First life: run a job, then shut down — the shared cache must be
	// checkpointed to HistoryDir.
	m1 := NewManager(cfg)
	v, err := m1.Submit(Spec{URL: srv.URL, N: 30, Workers: 2, Slider: ptr(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, m1, v.ID, 30*time.Second, func(v View) bool { return v.State == StateCompleted })
	firstIssued := m1.Hosts()[0].Issued
	if firstIssued == 0 {
		t.Fatal("first run issued no queries")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(histDir, "history-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files = %v (err %v), want exactly one", files, err)
	}

	// Second life: a fresh manager warm-starts the cache during Submit,
	// before the job draws anything.
	m2 := newTestManager(t, srv, Config{HistoryDir: histDir})
	v2, err := m2.Submit(Spec{URL: srv.URL, N: 30, Workers: 2, Slider: ptr(1), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hs := m2.Hosts(); len(hs) != 1 || hs[0].Entries == 0 {
		t.Fatalf("cache not warm-started at submit: %+v", hs)
	}
	waitJob(t, m2, v2.ID, 30*time.Second, func(v View) bool { return v.State == StateCompleted })
	if hs := m2.Hosts(); hs[0].Saved() == 0 {
		t.Fatalf("warm-started run saved nothing: %+v", hs[0])
	}
}
