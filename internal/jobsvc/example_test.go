package jobsvc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/jobsvc"
	"hdsampler/internal/webform"
)

// Example_restJobSubmission drives the hdsamplerd REST API end to end in
// process: stand up a simulated hidden database behind its web form,
// expose a job manager through the HTTP handler, submit a sampling job
// with POST /jobs, and poll GET /jobs/{id} until it finishes. It runs
// under go test — the target, the walk, and the rejection step are all
// seeded, so the job always accepts exactly what it was asked for.
func Example_restJobSubmission() {
	// The target: a simulated hidden database behind its HTML/JSON form.
	ds := datagen.Vehicles(5000, 21)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 200})
	if err != nil {
		log.Fatal(err)
	}
	target := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	defer target.Close()

	// The daemon: a job manager behind the REST handler.
	m := jobsvc.NewManager(jobsvc.Config{Client: target.Client()})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			log.Fatal(err)
		}
	}()
	daemon := httptest.NewServer(jobsvc.NewHandler(m))
	defer daemon.Close()

	// Submit a job: 25 samples from the target, seeded for replay.
	body, _ := json.Marshal(jobsvc.Spec{URL: target.URL, N: 25, Seed: 7})
	resp, err := daemon.Client().Post(daemon.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var v jobsvc.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted: %d, state %s\n", resp.StatusCode, v.State)

	// Poll the job's live progress until it reaches a terminal state.
	for !v.State.Terminal() {
		time.Sleep(10 * time.Millisecond)
		resp, err := daemon.Client().Get(daemon.URL + "/jobs/" + v.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	fmt.Printf("finished: state %s, accepted %d\n", v.State, v.Accepted)
	// Output:
	// submitted: 201, state queued
	// finished: state completed, accepted 25
}
