package jobsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hdsampler/internal/telemetry"
)

// NewHandler exposes a Manager as the hdsamplerd REST API:
//
//	POST   /jobs              submit a job (body: Spec JSON) → 201 + View
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         one job's live progress
//	DELETE /jobs/{id}         cancel a job
//	GET    /jobs/{id}/samples the job's samples as a store.SampleSet
//	GET    /metrics           service counters (Prometheus text format)
//	GET    /debug/walks       sampled end-to-end walk traces (JSON)
//	GET    /healthz           liveness + durability health (JSON; always
//	                          200 while the process serves — a degraded
//	                          journal is alarming, not fatal)
//	GET    /readyz            readiness probe (503 while draining)
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, fmt.Errorf("jobsvc: bad request body: %w", err), http.StatusBadRequest)
			return
		}
		v, err := m.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrShuttingDown) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, err, code)
			return
		}
		writeJSON(w, http.StatusCreated, v)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Job(r.PathValue("id"))
		if err != nil {
			httpError(w, err, http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, err, http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/samples", func(w http.ResponseWriter, r *http.Request) {
		set, err := m.SampleSet(r.PathValue("id"))
		if err != nil {
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrNotFound):
				code = http.StatusNotFound
			case errors.Is(err, ErrNoSamples):
				code = http.StatusConflict
			}
			httpError(w, err, code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := set.Write(w); err != nil {
			// Headers are gone; nothing more to do than drop the conn.
			return
		}
	})
	mux.Handle("GET /metrics", m.Registry().Handler())
	mux.HandleFunc("GET /debug/walks", func(w http.ResponseWriter, r *http.Request) {
		t := m.Tracer()
		st := t.Stats()
		walks := t.Dump()
		if walks == nil {
			walks = []telemetry.TraceView{}
		}
		writeJSON(w, http.StatusOK, WalkDump{
			Started:  st.Started,
			Finished: st.Finished,
			Evicted:  st.Evicted,
			Walks:    walks,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := m.Health()
		if h.Draining {
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	return mux
}

// WalkDump is the /debug/walks response: tracer lifetime counters plus
// the ring buffer's finished traces, oldest first.
type WalkDump struct {
	// Started counts walks sampled into tracing, Finished those whose
	// traces completed, Evicted the finished traces the ring displaced.
	Started  int64                 `json:"started"`
	Finished int64                 `json:"finished"`
	Evicted  int64                 `json:"evicted"`
	Walks    []telemetry.TraceView `json:"walks"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, err error, code int) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
