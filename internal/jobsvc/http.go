package jobsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// NewHandler exposes a Manager as the hdsamplerd REST API:
//
//	POST   /jobs              submit a job (body: Spec JSON) → 201 + View
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         one job's live progress
//	DELETE /jobs/{id}         cancel a job
//	GET    /jobs/{id}/samples the job's samples as a store.SampleSet
//	GET    /metrics           service counters (Prometheus text format)
//	GET    /healthz           liveness probe
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, fmt.Errorf("jobsvc: bad request body: %w", err), http.StatusBadRequest)
			return
		}
		v, err := m.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrShuttingDown) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, err, code)
			return
		}
		writeJSON(w, http.StatusCreated, v)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Job(r.PathValue("id"))
		if err != nil {
			httpError(w, err, http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, err, http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/samples", func(w http.ResponseWriter, r *http.Request) {
		set, err := m.SampleSet(r.PathValue("id"))
		if err != nil {
			code := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrNotFound):
				code = http.StatusNotFound
			case errors.Is(err, ErrNoSamples):
				code = http.StatusConflict
			}
			httpError(w, err, code)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := set.Write(w); err != nil {
			// Headers are gone; nothing more to do than drop the conn.
			return
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, m)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeMetrics renders service counters in the Prometheus text
// exposition format (hand-rolled: no client library in the build).
func writeMetrics(w http.ResponseWriter, m *Manager) {
	byState := map[State]int{
		StateQueued: 0, StateRunning: 0,
		StateCompleted: 0, StateFailed: 0, StateCanceled: 0,
	}
	var accepted, queries int64
	for _, v := range m.Jobs() {
		byState[v.State]++
		accepted += v.Accepted
		queries += v.Queries
	}
	// Savings come from the host caches, not from summing per-job views:
	// concurrent jobs on one cache observe overlapping windows, and the
	// sum would overcount.
	hosts := m.Hosts()
	var saved int64
	for _, h := range hosts {
		saved += h.Saved()
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_jobs Jobs by lifecycle state.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_jobs gauge")
	for _, s := range []State{StateQueued, StateRunning, StateCompleted, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "hdsamplerd_jobs{state=%q} %d\n", s, byState[s])
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_samples_accepted_total Accepted samples across all jobs.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_samples_accepted_total counter")
	fmt.Fprintf(w, "hdsamplerd_samples_accepted_total %d\n", accepted)
	fmt.Fprintln(w, "# HELP hdsamplerd_queries_total Interface queries issued by samplers across all jobs.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_queries_total counter")
	fmt.Fprintf(w, "hdsamplerd_queries_total %d\n", queries)
	fmt.Fprintln(w, "# HELP hdsamplerd_queries_saved_total Queries answered by shared history caches instead of the interface.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_queries_saved_total counter")
	fmt.Fprintf(w, "hdsamplerd_queries_saved_total %d\n", saved)
	fmt.Fprintln(w, "# HELP hdsamplerd_host_cache_issued_total Real queries forwarded to each host.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_cache_issued_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_cache_issued_total{host=%q} %d\n", h.Host, h.Issued)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_cache_saved_total Queries each host's shared cache answered (exact hits + inference).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_cache_saved_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_cache_saved_total{host=%q} %d\n", h.Host, h.Saved())
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_cache_entries Resident entries in each host's shared history caches.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_cache_entries gauge")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_cache_entries{host=%q} %d\n", h.Host, h.Entries)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_cache_protected_entries Pinned fully-specified overflow entries (never evicted).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_cache_protected_entries gauge")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_cache_protected_entries{host=%q} %d\n", h.Host, h.Protected)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_cache_evictions_total Entries reclaimed by each host cache's CLOCK eviction.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_cache_evictions_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_cache_evictions_total{host=%q} %d\n", h.Host, h.Evictions)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_cache_shard_balance_cv Coefficient of variation of per-shard entry counts (0 = perfectly balanced).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_cache_shard_balance_cv gauge")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_cache_shard_balance_cv{host=%q} %g\n", h.Host, h.ShardBalance.CV)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_throttled_total Queries delayed by the per-host politeness budget.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_throttled_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_throttled_total{host=%q} %d\n", h.Host, h.Throttled)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_coalesced_total Queries answered by joining an identical in-flight query.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_coalesced_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_coalesced_total{host=%q} %d\n", h.Host, h.Coalesced)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_batched_total Queries shipped inside shared batch wire requests.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_batched_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_batched_total{host=%q} %d\n", h.Host, h.Batched)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_batch_requests_total Batch wire requests issued (each carries several queries under one rate-limit charge).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_batch_requests_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_batch_requests_total{host=%q} %d\n", h.Host, h.BatchRequests)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_wire_calls_total Wire executions (single-query requests plus batch requests).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_wire_calls_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_wire_calls_total{host=%q} %d\n", h.Host, h.WireCalls)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_in_flight Wire requests currently running against each host.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_in_flight gauge")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_in_flight{host=%q} %d\n", h.Host, h.InFlight)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_concurrency_limit Current AIMD concurrency window per host (0 = unlimited).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_concurrency_limit gauge")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_concurrency_limit{host=%q} %g\n", h.Host, h.Limit)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_backoffs_total Multiplicative window cuts after 429 pushback.")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_backoffs_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_backoffs_total{host=%q} %d\n", h.Host, h.Backoffs)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_exec_transient_retries_total Wire executions repeated after transient interface faults (5xx blips, timeouts).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_exec_transient_retries_total counter")
	for _, h := range hosts {
		fmt.Fprintf(w, "hdsamplerd_host_exec_transient_retries_total{host=%q} %d\n", h.Host, h.TransientRetries)
	}
	fmt.Fprintln(w, "# HELP hdsamplerd_host_faults_injected_total Misbehaviour injected by the configured fault profile, by kind (zero without -fault-profile).")
	fmt.Fprintln(w, "# TYPE hdsamplerd_host_faults_injected_total counter")
	for _, h := range hosts {
		f := h.Faults
		for _, kv := range []struct {
			kind string
			n    int64
		}{
			{"rate_limited", f.RateLimited},
			{"exhausted_429s", f.Exhausted429s},
			{"transient", f.Transients},
			{"jittered", f.Jittered},
			{"reordered", f.Reordered},
			{"rounded_counts", f.RoundedCounts},
			{"slow_calls", f.SlowCalls},
		} {
			fmt.Fprintf(w, "hdsamplerd_host_faults_injected_total{host=%q,kind=%q} %d\n", h.Host, kv.kind, kv.n)
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, err error, code int) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
