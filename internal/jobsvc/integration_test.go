package jobsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/store"
)

// apiClient drives the REST API of an in-process daemon.
type apiClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func (a *apiClient) do(method, path string, body any) (int, []byte) {
	a.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			a.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, a.base+path, rd)
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := a.c.Do(req)
	if err != nil {
		a.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		a.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (a *apiClient) submit(spec Spec) View {
	a.t.Helper()
	code, body := a.do(http.MethodPost, "/jobs", spec)
	if code != http.StatusCreated {
		a.t.Fatalf("POST /jobs: %d %s", code, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		a.t.Fatal(err)
	}
	return v
}

func (a *apiClient) job(id string) View {
	a.t.Helper()
	code, body := a.do(http.MethodGet, "/jobs/"+id, nil)
	if code != http.StatusOK {
		a.t.Fatalf("GET /jobs/%s: %d %s", id, code, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		a.t.Fatal(err)
	}
	return v
}

func (a *apiClient) wait(id string, timeout time.Duration, pred func(View) bool) View {
	a.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := a.job(id)
		if pred(v) {
			return v
		}
		if time.Now().After(deadline) {
			a.t.Fatalf("job %s: timed out; last view %+v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonIntegration is the acceptance scenario: webform.Server and
// the hdsamplerd service boot in-process, two concurrent jobs hit the
// same host, both complete with the requested n, the shared per-host
// history cache reports cross-job hits, DELETE cancels a running job
// promptly, and a completed job's samples round-trip through
// internal/store.
func TestDaemonIntegration(t *testing.T) {
	db, target := newTarget(t, 2500, 300, hiddendb.CountNone)
	dataDir := t.TempDir()
	mgr := NewManager(Config{DataDir: dataDir, Client: target.Client(), MaxConcurrent: 4})
	daemon := httptest.NewServer(NewHandler(mgr))
	t.Cleanup(daemon.Close)
	api := &apiClient{t: t, base: daemon.URL, c: daemon.Client()}

	// Two concurrent jobs against the same host.
	const n = 60
	j1 := api.submit(Spec{URL: target.URL, N: n, Workers: 3, Seed: 11})
	j2 := api.submit(Spec{URL: target.URL, N: n, Workers: 3, Seed: 22})
	v1 := api.wait(j1.ID, 60*time.Second, func(v View) bool { return v.State.Terminal() })
	v2 := api.wait(j2.ID, 60*time.Second, func(v View) bool { return v.State.Terminal() })
	for _, v := range []View{v1, v2} {
		if v.State != StateCompleted {
			t.Fatalf("job %s: state %s (%s)", v.ID, v.State, v.Error)
		}
		if v.Accepted != n {
			t.Fatalf("job %s: accepted %d, want %d", v.ID, v.Accepted, n)
		}
		if v.Queries == 0 {
			t.Fatalf("job %s reports no query bill", v.ID)
		}
	}

	// One shared per-host cache served both jobs and reports hits.
	hosts := mgr.Hosts()
	if len(hosts) != 1 {
		t.Fatalf("host entries = %d, want 1 (both jobs hit one host)", len(hosts))
	}
	if hosts[0].Saved() == 0 {
		t.Fatal("shared history cache saved nothing across the two jobs")
	}
	if v1.QueriesSaved+v2.QueriesSaved == 0 {
		t.Fatal("neither job observed history savings")
	}
	// The later-finishing job drew on answers it never issued itself:
	// the cache forwarded fewer real queries than the two jobs issued.
	if hosts[0].Issued >= v1.Queries+v2.Queries {
		t.Fatalf("cache forwarded %d real queries for %d issued — no sharing",
			hosts[0].Issued, v1.Queries+v2.Queries)
	}

	// Samples round-trip through internal/store: API payload and disk
	// checkpoint both decode to the accepted tuples.
	code, body := api.do(http.MethodGet, "/jobs/"+j1.ID+"/samples", nil)
	if code != http.StatusOK {
		t.Fatalf("GET samples: %d %s", code, body)
	}
	set, err := store.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("samples payload is not a store.SampleSet: %v", err)
	}
	tuples, reaches, err := set.DecodeSamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != n || len(reaches) != n {
		t.Fatalf("decoded %d tuples / %d reaches, want %d", len(tuples), len(reaches), n)
	}
	schema, err := set.DecodeSchema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumAttrs() != db.Schema().NumAttrs() {
		t.Fatalf("schema lost attributes: %d vs %d", schema.NumAttrs(), db.Schema().NumAttrs())
	}
	if v := api.job(j1.ID); v.Checkpoint == "" {
		t.Fatal("completed job has no checkpoint")
	} else if onDisk, err := store.LoadFile(v.Checkpoint); err != nil || len(onDisk.Samples) != n {
		t.Fatalf("checkpoint %s: %v (%d samples)", v.Checkpoint, err, len(onDisk.Samples))
	}

	// Cancellation via DELETE stops a running job promptly.
	big := api.submit(Spec{URL: target.URL, N: 1000000, Workers: 2, Seed: 33})
	api.wait(big.ID, 30*time.Second, func(v View) bool { return v.State == StateRunning && v.Accepted > 0 })
	start := time.Now()
	if code, body := api.do(http.MethodDelete, "/jobs/"+big.ID, nil); code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", code, body)
	}
	v := api.wait(big.ID, 5*time.Second, func(v View) bool { return v.State.Terminal() })
	if v.State != StateCanceled {
		t.Fatalf("cancelled job state = %s", v.State)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancellation took %s", took)
	}
	if v.Accepted == 0 || int64(v.Spec.N) == v.Accepted {
		t.Fatalf("cancelled mid-flight but accepted = %d of %d", v.Accepted, v.Spec.N)
	}

	// Metrics reflect the workload.
	code, body = api.do(http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`hdsamplerd_jobs{state="completed"} 2`,
		`hdsamplerd_jobs{state="canceled"} 1`,
		"hdsamplerd_queries_total",
		fmt.Sprintf("hdsamplerd_host_cache_saved_total{host=%q}", hosts[0].Host),
		fmt.Sprintf("hdsamplerd_host_exec_coalesced_total{host=%q}", hosts[0].Host),
		fmt.Sprintf("hdsamplerd_host_exec_wire_calls_total{host=%q}", hosts[0].Host),
		fmt.Sprintf("hdsamplerd_host_exec_in_flight{host=%q}", hosts[0].Host),
		fmt.Sprintf("hdsamplerd_host_exec_concurrency_limit{host=%q}", hosts[0].Host),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
