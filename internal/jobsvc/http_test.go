package jobsvc

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hdsampler/internal/hiddendb"
)

func TestHTTPErrorPaths(t *testing.T) {
	_, target := newTarget(t, 200, 50, hiddendb.CountNone)
	m := newTestManager(t, target, Config{})
	daemon := httptest.NewServer(NewHandler(m))
	t.Cleanup(daemon.Close)
	api := &apiClient{t: t, base: daemon.URL, c: daemon.Client()}

	if code, body := api.do(http.MethodPost, "/jobs", map[string]any{"n": 5}); code != http.StatusBadRequest {
		t.Errorf("POST without url: %d %s", code, body)
	}
	if code, _ := api.do(http.MethodGet, "/jobs/j-9999", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: %d", code)
	}
	if code, _ := api.do(http.MethodDelete, "/jobs/j-9999", nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %d", code)
	}
	if code, _ := api.do(http.MethodGet, "/jobs/j-9999/samples", nil); code != http.StatusNotFound {
		t.Errorf("GET samples of unknown job: %d", code)
	}
	if code, body := api.do(http.MethodPost, "/jobs", "not json at all"); code != http.StatusBadRequest {
		t.Errorf("POST with junk body: %d %s", code, body)
	}

	// An empty job table still lists and reports metrics.
	if code, body := api.do(http.MethodGet, "/jobs", nil); code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("GET /jobs empty: %d %q", code, body)
	}
	if code, _ := api.do(http.MethodGet, "/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
	code, body := api.do(http.MethodGet, "/metrics", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `hdsamplerd_jobs{state="queued"} 0`) {
		t.Errorf("metrics: %d %s", code, body)
	}
}

func TestHTTPListsJobsInOrder(t *testing.T) {
	_, target := newTarget(t, 500, 100, hiddendb.CountNone)
	m := newTestManager(t, target, Config{})
	daemon := httptest.NewServer(NewHandler(m))
	t.Cleanup(daemon.Close)
	api := &apiClient{t: t, base: daemon.URL, c: daemon.Client()}

	a := api.submit(Spec{URL: target.URL, N: 5, Seed: 1})
	b := api.submit(Spec{URL: target.URL, N: 5, Seed: 2})
	views := m.Jobs()
	if len(views) != 2 || views[0].ID != a.ID || views[1].ID != b.ID {
		t.Fatalf("job order: %+v", views)
	}
	api.wait(a.ID, 30e9, func(v View) bool { return v.State.Terminal() })
	api.wait(b.ID, 30e9, func(v View) bool { return v.State.Terminal() })
}
