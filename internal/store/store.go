// Package store persists sample sets to disk as JSON so analysis can
// continue across sessions — the durable version of the demo's Sample
// Processor, which "stores the final set of samples". A stored set carries
// the discovered schema and per-sample provenance (ID, reach), so loaded
// samples feed the estimators and the Horvitz–Thompson machinery directly.
package store

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"hdsampler/internal/hiddendb"
)

// SampleSet is one persisted sampling run (or the merge of several).
type SampleSet struct {
	// Source describes where the samples came from (URL or dataset name);
	// Method the sampling algorithm; C the rejection target used.
	Source string  `json:"source"`
	Method string  `json:"method"`
	C      float64 `json:"c"`
	// DrawnAt is the completion time of the (latest merged) run.
	DrawnAt time.Time `json:"drawn_at"`
	// Queries is the cumulative interface query bill.
	Queries int64 `json:"queries"`

	Schema  wireSchema   `json:"schema"`
	Samples []wireSample `json:"samples"`
}

// wireSchema is the JSON form of a schema.
type wireSchema struct {
	Name  string     `json:"name"`
	Attrs []wireAttr `json:"attrs"`
}

type wireAttr struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Values  []string     `json:"values"`
	Buckets [][2]float64 `json:"buckets,omitempty"`
}

// wireSample is the JSON form of one sample.
type wireSample struct {
	ID    int                `json:"id"`
	Vals  []int              `json:"vals"`
	Nums  map[string]float64 `json:"nums,omitempty"`
	Reach float64            `json:"reach,omitempty"`
}

// New builds a SampleSet from a schema and samples with optional reach
// values (nil reaches stores plain samples).
func New(source, method string, c float64, schema *hiddendb.Schema, samples []hiddendb.Tuple, reaches []float64, queries int64) (*SampleSet, error) {
	if schema == nil {
		return nil, fmt.Errorf("store: nil schema")
	}
	if reaches != nil && len(reaches) != len(samples) {
		return nil, fmt.Errorf("store: %d reaches for %d samples", len(reaches), len(samples))
	}
	set := &SampleSet{
		Source: source, Method: method, C: c,
		DrawnAt: time.Now().UTC(), Queries: queries,
		Schema: encodeSchema(schema),
	}
	for i := range samples {
		ws, err := encodeSample(schema, &samples[i])
		if err != nil {
			return nil, err
		}
		if reaches != nil {
			ws.Reach = reaches[i]
		}
		set.Samples = append(set.Samples, ws)
	}
	return set, nil
}

func encodeSchema(s *hiddendb.Schema) wireSchema {
	out := wireSchema{Name: s.Name}
	for _, a := range s.Attrs {
		wa := wireAttr{Name: a.Name, Kind: a.Kind.String(), Values: a.Values}
		for _, b := range a.Buckets {
			wa.Buckets = append(wa.Buckets, [2]float64{b.Lo, b.Hi})
		}
		out.Attrs = append(out.Attrs, wa)
	}
	return out
}

func encodeSample(s *hiddendb.Schema, t *hiddendb.Tuple) (wireSample, error) {
	if len(t.Vals) != s.NumAttrs() {
		return wireSample{}, fmt.Errorf("store: sample arity %d, schema has %d", len(t.Vals), s.NumAttrs())
	}
	ws := wireSample{ID: t.ID, Vals: t.Vals}
	for a := range s.Attrs {
		if v, ok := t.Num(a); ok {
			if ws.Nums == nil {
				ws.Nums = make(map[string]float64)
			}
			ws.Nums[s.Attrs[a].Name] = v
		}
	}
	return ws, nil
}

// DecodeSchema reconstructs the hiddendb.Schema.
func (set *SampleSet) DecodeSchema() (*hiddendb.Schema, error) {
	attrs := make([]hiddendb.Attribute, 0, len(set.Schema.Attrs))
	for _, wa := range set.Schema.Attrs {
		a := hiddendb.Attribute{Name: wa.Name, Values: wa.Values}
		switch wa.Kind {
		case "bool":
			a.Kind = hiddendb.KindBool
		case "numeric":
			a.Kind = hiddendb.KindNumeric
			for _, b := range wa.Buckets {
				a.Buckets = append(a.Buckets, hiddendb.Bucket{Lo: b[0], Hi: b[1]})
			}
		case "categorical":
			a.Kind = hiddendb.KindCategorical
		default:
			return nil, fmt.Errorf("store: unknown attribute kind %q", wa.Kind)
		}
		attrs = append(attrs, a)
	}
	return hiddendb.NewSchema(set.Schema.Name, attrs...)
}

// DecodeSamples reconstructs the tuples (and reaches, aligned; reach 0
// when the set stored none).
func (set *SampleSet) DecodeSamples() ([]hiddendb.Tuple, []float64, error) {
	schema, err := set.DecodeSchema()
	if err != nil {
		return nil, nil, err
	}
	tuples := make([]hiddendb.Tuple, 0, len(set.Samples))
	reaches := make([]float64, 0, len(set.Samples))
	for i, ws := range set.Samples {
		if len(ws.Vals) != schema.NumAttrs() {
			return nil, nil, fmt.Errorf("store: sample %d arity %d, schema has %d", i, len(ws.Vals), schema.NumAttrs())
		}
		t := hiddendb.Tuple{ID: ws.ID, Vals: ws.Vals, Nums: make([]float64, schema.NumAttrs())}
		for a := range t.Nums {
			t.Nums[a] = math.NaN()
		}
		for name, v := range ws.Nums {
			if idx := schema.AttrIndex(name); idx >= 0 {
				t.Nums[idx] = v
			}
		}
		if err := validVals(schema, t.Vals); err != nil {
			return nil, nil, fmt.Errorf("store: sample %d: %w", i, err)
		}
		tuples = append(tuples, t)
		reaches = append(reaches, ws.Reach)
	}
	return tuples, reaches, nil
}

func validVals(s *hiddendb.Schema, vals []int) error {
	for a, v := range vals {
		if v < 0 || v >= s.DomainSize(a) {
			return fmt.Errorf("value %d out of domain for %q", v, s.Attrs[a].Name)
		}
	}
	return nil
}

// Merge appends another set's samples; the schemas must be structurally
// identical. Queries accumulate; the later DrawnAt wins.
func (set *SampleSet) Merge(other *SampleSet) error {
	a, err := set.DecodeSchema()
	if err != nil {
		return err
	}
	b, err := other.DecodeSchema()
	if err != nil {
		return err
	}
	if !a.Equal(b) {
		return fmt.Errorf("store: cannot merge sample sets with different schemas (%q vs %q)", a.Name, b.Name)
	}
	set.Samples = append(set.Samples, other.Samples...)
	set.Queries += other.Queries
	if other.DrawnAt.After(set.DrawnAt) {
		set.DrawnAt = other.DrawnAt
	}
	return nil
}

// Write serializes the set as indented JSON.
func (set *SampleSet) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(set)
}

// Read deserializes a set.
func Read(r io.Reader) (*SampleSet, error) {
	var set SampleSet
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	if _, err := set.DecodeSchema(); err != nil {
		return nil, err
	}
	return &set, nil
}

// SaveFile writes the set to path crash-atomically: temp file in the
// same directory, fsync, then rename. Readers (and a daemon replaying
// its journal after SIGKILL) see either the old checkpoint or the new
// one, never a torn half-write.
func SaveFile(path string, set *SampleSet) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := set.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a set from path.
func LoadFile(path string) (*SampleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
