package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

func vehicleSet(t *testing.T, n int, withReach bool) (*SampleSet, *hiddendb.Schema, []hiddendb.Tuple) {
	t.Helper()
	ds := datagen.Vehicles(n, 3)
	var reaches []float64
	if withReach {
		reaches = make([]float64, n)
		for i := range reaches {
			reaches[i] = 1 / float64(n+i)
		}
	}
	set, err := New("unit-test", "random-walk", 0.5, ds.Schema, ds.Tuples, reaches, 123)
	if err != nil {
		t.Fatal(err)
	}
	return set, ds.Schema, ds.Tuples
}

func TestRoundTripThroughWriter(t *testing.T) {
	set, schema, tuples := vehicleSet(t, 25, true)
	var buf bytes.Buffer
	if err := set.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Source != "unit-test" || back.Method != "random-walk" || back.C != 0.5 || back.Queries != 123 {
		t.Fatalf("metadata lost: %+v", back)
	}
	gotSchema, err := back.DecodeSchema()
	if err != nil {
		t.Fatal(err)
	}
	if !gotSchema.Equal(schema) {
		t.Fatal("schema round trip failed")
	}
	gotTuples, gotReaches, err := back.DecodeSamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTuples) != len(tuples) {
		t.Fatalf("samples = %d, want %d", len(gotTuples), len(tuples))
	}
	for i := range tuples {
		if gotTuples[i].ID != tuples[i].ID {
			t.Fatal("ID lost")
		}
		for a := range tuples[i].Vals {
			if gotTuples[i].Vals[a] != tuples[i].Vals[a] {
				t.Fatal("vals lost")
			}
		}
		wp, wok := tuples[i].Num(datagen.VehAttrPrice)
		gp, gok := gotTuples[i].Num(datagen.VehAttrPrice)
		if wok != gok || wp != gp {
			t.Fatal("numeric payload lost")
		}
		if _, ok := gotTuples[i].Num(datagen.VehAttrMake); ok {
			t.Fatal("categorical attr gained payload")
		}
		if math.Abs(gotReaches[i]-1/float64(25+i)) > 1e-15 {
			t.Fatal("reach lost")
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	set, _, _ := vehicleSet(t, 10, false)
	path := filepath.Join(t.TempDir(), "samples.json")
	if err := SaveFile(path, set); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tuples, reaches, err := back.DecodeSamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 10 {
		t.Fatalf("samples = %d", len(tuples))
	}
	for _, r := range reaches {
		if r != 0 {
			t.Fatal("reach should be zero when none was stored")
		}
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "samples.json")
	small, _, _ := vehicleSet(t, 5, false)
	big, _, _ := vehicleSet(t, 40, false)

	// Overwriting a larger checkpoint with a smaller one must go through
	// rename, never truncate-in-place: the old file stays intact until
	// the new one is complete.
	if err := SaveFile(path, big); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, small); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tuples, _, _ := back.DecodeSamples(); len(tuples) != 5 {
		t.Fatalf("samples = %d, want 5", len(tuples))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want just the checkpoint", len(ents))
	}

	// A write into a missing directory fails without leaving debris.
	if err := SaveFile(filepath.Join(dir, "nope", "x.json"), small); err == nil {
		t.Fatal("save into missing dir should error")
	}
}

func TestMerge(t *testing.T) {
	a, _, _ := vehicleSet(t, 10, false)
	b, _, _ := vehicleSet(t, 15, false)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 25 {
		t.Fatalf("merged samples = %d", len(a.Samples))
	}
	if a.Queries != 246 {
		t.Fatalf("merged queries = %d", a.Queries)
	}
	// Schema mismatch is rejected.
	ds := datagen.IIDBoolean(3, 5, 0.5, 1)
	other, err := New("x", "y", 1, ds.Schema, ds.Tuples, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil || !strings.Contains(err.Error(), "different schemas") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	ds := datagen.Vehicles(5, 1)
	if _, err := New("s", "m", 1, nil, ds.Tuples, nil, 0); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := New("s", "m", 1, ds.Schema, ds.Tuples, []float64{1}, 0); err == nil {
		t.Error("misaligned reaches accepted")
	}
	bad := []hiddendb.Tuple{{Vals: []int{1}}}
	if _, err := New("s", "m", 1, ds.Schema, bad, nil, 0); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"schema":{"name":"x","attrs":[{"name":"a","kind":"weird","values":["1","2"]}]}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDecodeRejectsOutOfDomain(t *testing.T) {
	set, _, _ := vehicleSet(t, 3, false)
	set.Samples[0].Vals[0] = 99
	if _, _, err := set.DecodeSamples(); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestLoadFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json":  `{"source":"x","schema":{"name":"v","attrs":[{"na`,
		"not-json.json":   "<html>502 Bad Gateway</html>",
		"empty.json":      "",
		"bad-schema.json": `{"source":"x","schema":{"name":"v","attrs":[{"name":"a","kind":"fancy","values":["1"]}]},"samples":[]}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadFile(path); err == nil {
				t.Fatalf("corrupt file %s loaded without error", name)
			}
		})
	}
}

func TestMergeRejectsCorruptSchemas(t *testing.T) {
	good, _, _ := vehicleSet(t, 5, false)
	bad, _, _ := vehicleSet(t, 5, false)
	bad.Schema.Attrs[0].Kind = "corrupted"
	if err := good.Merge(bad); err == nil {
		t.Error("merge with corrupt other-schema accepted")
	}
	if err := bad.Merge(good); err == nil {
		t.Error("merge onto corrupt receiver accepted")
	}
	if len(good.Samples) != 5 {
		t.Fatalf("failed merge mutated the receiver: %d samples", len(good.Samples))
	}
}

func TestDecodeRejectsArityMismatch(t *testing.T) {
	set, _, _ := vehicleSet(t, 3, false)
	set.Samples[1].Vals = set.Samples[1].Vals[:1]
	if _, _, err := set.DecodeSamples(); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("arity mismatch accepted: %v", err)
	}
}
