package store

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

// HistoryDump is the durable form of a query-history cache snapshot, so a
// restarted daemon can warm-start its per-host caches instead of
// re-paying their query bills. Source identifies which cache the dump
// belongs to (host + connector + trust mode); loaders verify it before
// adopting entries.
type HistoryDump struct {
	Source  string             `json:"source"`
	SavedAt time.Time          `json:"saved_at"`
	Entries []wireHistoryEntry `json:"entries"`
}

// wireHistoryEntry is one cached answer on the wire.
type wireHistoryEntry struct {
	Key      string      `json:"key"`
	Overflow bool        `json:"overflow,omitempty"`
	Count    int         `json:"count"`
	Tuples   []wireTuple `json:"tuples,omitempty"`
}

// wireTuple carries a tuple without NaN (JSON cannot encode it): numeric
// raw values are keyed by attribute index and absent entries decode back
// to NaN.
type wireTuple struct {
	ID   int             `json:"id"`
	Vals []int           `json:"vals"`
	Nums map[int]float64 `json:"nums,omitempty"`
}

func encodeHistoryTuple(t *hiddendb.Tuple) wireTuple {
	wt := wireTuple{ID: t.ID, Vals: t.Vals}
	for i, v := range t.Nums {
		if !math.IsNaN(v) {
			if wt.Nums == nil {
				wt.Nums = make(map[int]float64)
			}
			wt.Nums[i] = v
		}
	}
	return wt
}

func decodeHistoryTuple(wt wireTuple) hiddendb.Tuple {
	t := hiddendb.Tuple{ID: wt.ID, Vals: wt.Vals}
	if len(wt.Nums) > 0 {
		t.Nums = make([]float64, len(wt.Vals))
		for i := range t.Nums {
			t.Nums[i] = math.NaN()
		}
		for i, v := range wt.Nums {
			if i >= 0 && i < len(t.Nums) {
				t.Nums[i] = v
			}
		}
	}
	return t
}

// NewHistoryDump packages a cache snapshot for persistence.
func NewHistoryDump(source string, snap *history.Snapshot) *HistoryDump {
	dump := &HistoryDump{Source: source, SavedAt: time.Now().UTC()}
	for _, se := range snap.Entries {
		we := wireHistoryEntry{Key: se.Key, Overflow: se.Overflow, Count: se.Count}
		for i := range se.Tuples {
			we.Tuples = append(we.Tuples, encodeHistoryTuple(&se.Tuples[i]))
		}
		dump.Entries = append(dump.Entries, we)
	}
	return dump
}

// Snapshot reconstructs the cache-facing snapshot.
func (d *HistoryDump) Snapshot() *history.Snapshot {
	snap := &history.Snapshot{}
	for _, we := range d.Entries {
		se := history.SnapshotEntry{Key: we.Key, Overflow: we.Overflow, Count: we.Count}
		for _, wt := range we.Tuples {
			se.Tuples = append(se.Tuples, decodeHistoryTuple(wt))
		}
		snap.Entries = append(snap.Entries, se)
	}
	return snap
}

// WriteHistory serializes a dump as JSON.
func WriteHistory(w io.Writer, dump *HistoryDump) error {
	return json.NewEncoder(w).Encode(dump)
}

// ReadHistory deserializes a dump.
func ReadHistory(r io.Reader) (*HistoryDump, error) {
	var dump HistoryDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return nil, fmt.Errorf("store: decode history dump: %w", err)
	}
	return &dump, nil
}

// SaveHistoryFile writes a dump to path atomically (temp file + rename),
// so a crash mid-write never destroys the previous good checkpoint.
func SaveHistoryFile(path string, dump *HistoryDump) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := WriteHistory(f, dump); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadHistoryFile reads a dump from path.
func LoadHistoryFile(path string) (*HistoryDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadHistory(f)
}
