package store

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

func sampleSnapshot() *history.Snapshot {
	return &history.Snapshot{Entries: []history.SnapshotEntry{
		{Key: "", Overflow: true, Count: 120}, // row-less overflow root
		{Key: "0=1&2=0", Count: 2, Tuples: []hiddendb.Tuple{
			{ID: 7, Vals: []int{1, 0, 0}, Nums: []float64{math.NaN(), 19999, math.NaN()}},
			{ID: 9, Vals: []int{1, 1, 0}, Nums: []float64{math.NaN(), 4500, math.NaN()}},
		}},
		{Key: "1=1", Count: 0, Tuples: nil}, // empty complete answer
	}}
}

func TestHistoryDumpRoundTrip(t *testing.T) {
	dump := NewHistoryDump("html|http://x|trust=false", sampleSnapshot())
	var buf bytes.Buffer
	if err := WriteHistory(&buf, dump); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != dump.Source {
		t.Fatalf("source %q, want %q", got.Source, dump.Source)
	}
	snap := got.Snapshot()
	if len(snap.Entries) != 3 {
		t.Fatalf("round-tripped %d entries, want 3", len(snap.Entries))
	}
	e := snap.Entries[1]
	if e.Key != "0=1&2=0" || e.Count != 2 || len(e.Tuples) != 2 {
		t.Fatalf("entry mangled: %+v", e)
	}
	tu := e.Tuples[0]
	if tu.ID != 7 || tu.Vals[0] != 1 {
		t.Fatalf("tuple mangled: %+v", tu)
	}
	// NaN markers (JSON-unencodable) must survive as NaN, raw values as-is.
	if v, ok := tu.Num(1); !ok || v != 19999 {
		t.Fatalf("numeric value lost: %v %v", v, ok)
	}
	if _, ok := tu.Num(0); ok {
		t.Fatal("absent numeric resurfaced as a value")
	}
	if !snap.Entries[0].Overflow || snap.Entries[0].Tuples != nil {
		t.Fatalf("overflow entry mangled: %+v", snap.Entries[0])
	}
}

func TestHistoryDumpFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	dump := NewHistoryDump("src", sampleSnapshot())
	if err := SaveHistoryFile(path, dump); err != nil {
		t.Fatal(err)
	}
	got, err := LoadHistoryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "src" || len(got.Entries) != 3 {
		t.Fatalf("loaded %+v", got)
	}
}
