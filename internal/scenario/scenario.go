package scenario

import (
	"context"
	"fmt"
	"sort"
	"time"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/exact"
	"hdsampler/internal/faultform"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/metrics"
	"hdsampler/internal/telemetry"
)

// DatasetSpec names one dataset shape of the matrix.
type DatasetSpec struct {
	// Name labels the matrix axis value.
	Name string
	// K is the interface's top-k limit the dataset is served under.
	K int
	// Build generates the dataset deterministically from a seed.
	Build func(seed int64) *datagen.Dataset
}

// SamplerSpec names one sampler configuration of the matrix.
type SamplerSpec struct {
	// Name labels the matrix axis value.
	Name string
	// CMode selects the rejection target: "accept-all" (C = 1, the raw
	// walk distribution) or "p25" (C at the 25th percentile of positive
	// reach probabilities — real rejection pressure at a bounded cost).
	CMode string
}

// Config tunes a matrix run.
type Config struct {
	// Seed drives everything: dataset generation, fault injection and the
	// samplers. Equal configs replay identically.
	Seed int64
	// SamplesPerCell is the accepted-sample target of each cell.
	SamplesPerCell int
	// Workers is the replica count each cell draws with.
	Workers int
	// BiasAlpha is the minimum chi-square p-value a fault-free cell must
	// reach (default 1e-3): lower means the observed sample is measurably
	// biased against the exact selection distribution.
	BiasAlpha float64
	// Datasets × Faults × Samplers is the grid; empty axes take the
	// defaults (DefaultDatasets/DefaultFaults/DefaultSamplers).
	Datasets []DatasetSpec
	Faults   []faultform.Profile
	Samplers []SamplerSpec
}

// DefaultDatasets returns the standard dataset axis. small shrinks the
// databases for PR-sized runs; nightly runs use the full shapes.
func DefaultDatasets(small bool) []DatasetSpec {
	scale := func(s, f int) int {
		if small {
			return s
		}
		return f
	}
	return []DatasetSpec{
		{Name: "iid-bool", K: 8, Build: func(seed int64) *datagen.Dataset {
			return datagen.IIDBoolean(6, scale(120, 400), 0.5, seed)
		}},
		{Name: "corr-bool", K: 8, Build: func(seed int64) *datagen.Dataset {
			return datagen.CorrelatedBoolean(6, scale(120, 400), 0.8, seed)
		}},
		{Name: "zipf-cat", K: 10, Build: func(seed int64) *datagen.Dataset {
			return datagen.ZipfCategorical([]int{5, 4, 3}, scale(150, 500), 1.0, seed)
		}},
		{Name: "ranked", K: 10, Build: func(seed int64) *datagen.Dataset {
			return datagen.RankedListings(scale(150, 500), seed)
		}},
		{Name: "wide-cat", K: 10, Build: func(seed int64) *datagen.Dataset {
			return datagen.WideCategorical(3, 12, scale(160, 500), 0.25, seed)
		}},
	}
}

// DefaultFaults returns the standard fault axis: the faultform presets.
func DefaultFaults() []faultform.Profile { return faultform.Presets() }

// DefaultSamplers returns the standard sampler axis.
func DefaultSamplers() []SamplerSpec {
	return []SamplerSpec{
		{Name: "fast", CMode: "accept-all"},
		{Name: "lowskew", CMode: "p25"},
	}
}

// CellResult is one cell's measurement.
type CellResult struct {
	Dataset string `json:"dataset"`
	Fault   string `json:"fault"`
	Sampler string `json:"sampler"`

	// Requested and Accepted are the sample target and what arrived; a
	// live cell has Accepted == Requested and no error.
	Requested int    `json:"requested"`
	Accepted  int    `json:"accepted"`
	Err       string `json:"err,omitempty"`

	// C is the rejection target used; DBSize the database size.
	C      float64 `json:"c"`
	DBSize int     `json:"db_size"`

	// ChiSquare/ChiDF/ChiP test the observed tuple counts against the
	// exact selection distribution; KS is the drift statistic over the
	// same support. BiasGated marks cells where the gate applies
	// (fault-free cells); BiasOK its verdict (true wherever ungated).
	ChiSquare float64 `json:"chi_square"`
	ChiDF     int     `json:"chi_df"`
	ChiP      float64 `json:"chi_p"`
	KS        float64 `json:"ks"`
	BiasGated bool    `json:"bias_gated"`
	BiasOK    bool    `json:"bias_ok"`

	// Query-cost accounting for the cell.
	Queries          int64   `json:"queries"`
	QueriesSaved     int64   `json:"queries_saved"`
	QueriesCoalesced int64   `json:"queries_coalesced"`
	QueriesBatched   int64   `json:"queries_batched"`
	QueriesRetried   int64   `json:"queries_retried"`
	QueriesPerSample float64 `json:"queries_per_sample"`

	// Faults is what the adversarial interface actually injected.
	Faults faultform.Stats `json:"faults"`

	// Walk summarizes the cell's whole-walk latency histogram and
	// TracedWalks counts the draws its sampling tracer captured — the
	// telemetry stack measured under the same adversarial conditions the
	// cell gates on.
	Walk        telemetry.Summary `json:"walk_latency"`
	TracedWalks int64             `json:"traced_walks"`

	WallMS float64 `json:"wall_ms"`
}

// Live reports whether the cell completed without deadlock or sample
// loss: every requested sample arrived and no error surfaced.
func (c *CellResult) Live() bool {
	return c.Err == "" && c.Accepted == c.Requested
}

// OK reports whether the cell passed everything that gates it.
func (c *CellResult) OK() bool { return c.Live() && c.BiasOK }

// Report is the machine-readable outcome of one matrix run.
type Report struct {
	GeneratedAt    time.Time    `json:"generated_at"`
	Seed           int64        `json:"seed"`
	SamplesPerCell int          `json:"samples_per_cell"`
	Workers        int          `json:"workers"`
	Grid           [3]int       `json:"grid"` // datasets × faults × samplers
	Cells          []CellResult `json:"cells"`
}

// Failures lists the failing cells, empty when the whole matrix passed.
func (r *Report) Failures() []string {
	var out []string
	for i := range r.Cells {
		c := &r.Cells[i]
		if !c.OK() {
			why := "bias"
			if !c.Live() {
				why = fmt.Sprintf("liveness (%d/%d samples, err=%q)", c.Accepted, c.Requested, c.Err)
			} else {
				why = fmt.Sprintf("bias (chi2=%.1f df=%d p=%.2g)", c.ChiSquare, c.ChiDF, c.ChiP)
			}
			out = append(out, fmt.Sprintf("%s/%s/%s: %s", c.Dataset, c.Fault, c.Sampler, why))
		}
	}
	return out
}

// Run executes the matrix sequentially (cells are independent and each is
// internally parallel) and returns the full report. The returned error
// reflects infrastructure problems (cancellation, a dataset that cannot
// be built); per-cell sampling failures land in the cells themselves so
// one hostile cell cannot hide the rest of the matrix.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.SamplesPerCell <= 0 {
		cfg.SamplesPerCell = 400
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BiasAlpha <= 0 {
		cfg.BiasAlpha = 1e-3
	}
	if len(cfg.Datasets) == 0 {
		cfg.Datasets = DefaultDatasets(true)
	}
	if len(cfg.Faults) == 0 {
		cfg.Faults = DefaultFaults()
	}
	if len(cfg.Samplers) == 0 {
		cfg.Samplers = DefaultSamplers()
	}
	rep := &Report{
		GeneratedAt:    time.Now().UTC(),
		Seed:           cfg.Seed,
		SamplesPerCell: cfg.SamplesPerCell,
		Workers:        cfg.Workers,
		Grid:           [3]int{len(cfg.Datasets), len(cfg.Faults), len(cfg.Samplers)},
	}
	for di, ds := range cfg.Datasets {
		// One dataset instance per axis value, shared by every fault and
		// sampler cell, so columns of the matrix are comparable.
		data := ds.Build(cfg.Seed + int64(di)*1009)
		ranker := data.Ranker
		db, err := hiddendb.New(data.Schema, data.Tuples, ranker, hiddendb.Config{K: ds.K})
		if err != nil {
			return rep, fmt.Errorf("scenario: dataset %s: %w", ds.Name, err)
		}
		dist, err := exact.WalkDist(db, nil, ds.K)
		if err != nil {
			return rep, fmt.Errorf("scenario: dataset %s: %w", ds.Name, err)
		}
		for fi, fp := range cfg.Faults {
			for si, sp := range cfg.Samplers {
				if err := ctx.Err(); err != nil {
					return rep, err
				}
				cellSeed := cfg.Seed + int64(di)*1_000_003 + int64(fi)*10_007 + int64(si)*101
				cell := runCell(ctx, cellParams{
					seed: cellSeed, n: cfg.SamplesPerCell, workers: cfg.Workers,
					alpha: cfg.BiasAlpha, ds: ds, fp: fp, sp: sp, db: db, dist: dist,
				})
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	return rep, nil
}

// cellParams carries one cell's inputs.
type cellParams struct {
	seed    int64
	n       int
	workers int
	alpha   float64
	ds      DatasetSpec
	fp      faultform.Profile
	sp      SamplerSpec
	db      *hiddendb.DB
	dist    *exact.Dist
}

// selectC maps a sampler spec onto its rejection target for this walk
// distribution.
func selectC(dist *exact.Dist, mode string) float64 {
	switch mode {
	case "p25":
		return reachQuantile(dist, 0.25)
	default: // "accept-all"
		return 1
	}
}

// reachQuantile returns the q-quantile of the positive reach
// probabilities (1 when no tuple is reachable: accept everything).
func reachQuantile(dist *exact.Dist, q float64) float64 {
	var reach []float64
	for _, r := range dist.Reach {
		if r > 0 {
			reach = append(reach, r)
		}
	}
	if len(reach) == 0 {
		return 1
	}
	sort.Float64s(reach)
	idx := int(q * float64(len(reach)-1))
	return reach[idx]
}

// runCell draws one cell through the full production stack and measures
// it.
func runCell(ctx context.Context, p cellParams) CellResult {
	cell := CellResult{
		Dataset:   p.ds.Name,
		Fault:     p.fp.Name,
		Sampler:   p.sp.Name,
		Requested: p.n,
		DBSize:    p.db.Size(),
	}
	c := selectC(p.dist, p.sp.CMode)
	cell.C = c

	conn := faultform.Wrap(formclient.NewLocal(p.db), p.fp, p.seed+7)
	// Each cell carries its own telemetry: a walk-duration histogram and a
	// 5%-sampled tracer, so the report shows the latency the stack
	// delivered under the same adversarial conditions the cell gates on.
	walkHist := &telemetry.Histogram{}
	tracer := telemetry.NewTracer(telemetry.TracerOptions{
		Rate: 0.05, Seed: uint64(p.seed) + 1, Capacity: 32,
	})
	cfg := hdsampler.Config{
		Seed:       p.seed,
		C:          c,
		K:          p.ds.K,
		UseHistory: true,
		Exec: hdsampler.ExecConfig{
			BatchLinger:      200 * time.Microsecond,
			MaxBatch:         8,
			MaxInFlight:      8,
			TransientRetries: 3,
		},
		Obs: &telemetry.WalkObserver{Tracer: tracer, Duration: walkHist},
	}
	start := time.Now()
	tuples, stats, err := hdsampler.DrawParallel(ctx, conn, cfg, p.n, p.workers)
	cell.WallMS = float64(time.Since(start).Microseconds()) / 1000
	cell.Accepted = len(tuples)
	if err != nil {
		cell.Err = err.Error()
	}
	cell.Queries = stats.Queries
	cell.QueriesSaved = stats.QueriesSaved
	cell.QueriesCoalesced = stats.QueriesCoalesced
	cell.QueriesBatched = stats.QueriesBatched
	cell.QueriesRetried = stats.QueriesRetried
	if len(tuples) > 0 {
		cell.QueriesPerSample = float64(stats.Queries) / float64(len(tuples))
	}
	cell.Faults = conn.FaultStats()
	cell.Walk = walkHist.Snapshot().Summary()
	cell.TracedWalks = tracer.Stats().Finished

	// Bias against the exact selection distribution. Content faults
	// (jitter trims reachability) legitimately shift the distribution, so
	// only fault-free cells gate on it; the statistics are recorded for
	// every cell regardless — drift under faults is exactly what the
	// nightly artifact is for.
	counts := make([]int, p.db.Size())
	for i := range tuples {
		if id := tuples[i].ID; id >= 0 && id < len(counts) {
			counts[id]++
		}
	}
	want := p.dist.Selection(c)
	expected := make([]float64, len(want))
	df := -1
	for i, w := range want {
		expected[i] = w * float64(len(tuples))
		if w > 0 {
			df++
		}
	}
	cell.ChiSquare = metrics.ChiSquareStat(counts, expected)
	cell.ChiDF = df
	if df > 0 {
		cell.ChiP = metrics.ChiSquarePValue(cell.ChiSquare, df)
	} else {
		cell.ChiP = 1
	}
	cell.KS = metrics.KSFromCounts(counts, want)
	cell.BiasGated = !p.fp.Active()
	cell.BiasOK = !cell.BiasGated || cell.ChiP >= p.alpha
	return cell
}
