package scenario

import (
	"context"
	"encoding/json"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/faultform"
)

// smallConfig is a reduced grid for the focused tests: one dataset, the
// availability-only fault profiles, both samplers.
func smallConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		SamplesPerCell: 250,
		Workers:        4,
		Datasets:       DefaultDatasets(true)[:1],
		Faults: []faultform.Profile{
			{Name: "none"},
			{Name: "flaky", RateLimitProb: 0.08, RateLimitBurst: 2, TransientProb: 0.06, TransientBurst: 1},
		},
	}
}

// TestFullMatrix runs the complete default grid — the same cells the
// nightly gate sweeps — and asserts the acceptance properties: every cell
// completes without deadlock or sample loss, and every fault-free cell's
// sample passes the chi-square bias gate against the exact distribution.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	rep, err := Run(context.Background(), Config{Seed: 42, SamplesPerCell: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid[0] < 3 || rep.Grid[1] < 3 || rep.Grid[2] < 2 {
		t.Fatalf("grid %v smaller than the required 3x3x2", rep.Grid)
	}
	if len(rep.Cells) != rep.Grid[0]*rep.Grid[1]*rep.Grid[2] {
		t.Fatalf("%d cells for grid %v", len(rep.Cells), rep.Grid)
	}
	gated, faulted := 0, 0
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if !c.Live() {
			t.Errorf("%s/%s/%s: sample loss: %d/%d accepted, err=%q",
				c.Dataset, c.Fault, c.Sampler, c.Accepted, c.Requested, c.Err)
		}
		if c.BiasGated {
			gated++
			if !c.BiasOK {
				t.Errorf("%s/%s/%s: biased: chi2=%.1f df=%d p=%.3g",
					c.Dataset, c.Fault, c.Sampler, c.ChiSquare, c.ChiDF, c.ChiP)
			}
		}
		if c.Faults.Total() > 0 {
			faulted++
		}
		if c.Queries == 0 {
			t.Errorf("%s/%s/%s: zero queries", c.Dataset, c.Fault, c.Sampler)
		}
	}
	if gated == 0 {
		t.Error("no cell was bias-gated; the matrix checks nothing")
	}
	if faulted == 0 {
		t.Error("no cell saw injected faults; the adversarial axis is dead")
	}
	if fs := rep.Failures(); len(fs) != 0 {
		t.Errorf("failures: %v", fs)
	}
}

// TestMatrixDeterministic pins the acceptance requirement that the grid
// replays identically from a seed: two runs agree on every cell's query
// bill, acceptance count and bias statistics.
func TestMatrixDeterministic(t *testing.T) {
	ctx := context.Background()
	a, err := Run(ctx, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := &a.Cells[i], &b.Cells[i]
		if ca.Dataset != cb.Dataset || ca.Fault != cb.Fault || ca.Sampler != cb.Sampler {
			t.Fatalf("cell %d identity differs", i)
		}
		if ca.Accepted != cb.Accepted || ca.Queries != cb.Queries || ca.C != cb.C {
			t.Errorf("%s/%s/%s: accepted/queries/C differ: (%d,%d,%g) vs (%d,%d,%g)",
				ca.Dataset, ca.Fault, ca.Sampler, ca.Accepted, ca.Queries, ca.C, cb.Accepted, cb.Queries, cb.C)
		}
		if ca.ChiSquare != cb.ChiSquare || ca.KS != cb.KS {
			t.Errorf("%s/%s/%s: bias statistics differ: chi %g vs %g, ks %g vs %g",
				ca.Dataset, ca.Fault, ca.Sampler, ca.ChiSquare, cb.ChiSquare, ca.KS, cb.KS)
		}
	}
}

// TestMatrixDetectsContentBias shows the gate's teeth: a content-faulting
// interface (top-k jitter hides rows) measurably shifts the distribution,
// and the recorded chi-square statistic flags it — this is exactly the
// regression the nightly run would catch if the sampler (or the cache, or
// the execution layer) started silently dropping rows.
func TestMatrixDetectsContentBias(t *testing.T) {
	cfg := smallConfig(11)
	cfg.SamplesPerCell = 400
	cfg.Faults = []faultform.Profile{
		{Name: "none"},
		{Name: "jitter", TopKJitter: 0.6, Reorder: true},
	}
	cfg.Samplers = DefaultSamplers()[:1] // fast: the raw walk distribution
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var clean, jittered *CellResult
	for i := range rep.Cells {
		switch rep.Cells[i].Fault {
		case "none":
			clean = &rep.Cells[i]
		case "jitter":
			jittered = &rep.Cells[i]
		}
	}
	if clean == nil || jittered == nil {
		t.Fatal("missing cells")
	}
	if !clean.BiasOK || !clean.BiasGated {
		t.Fatalf("clean cell failed its gate: p=%.3g", clean.ChiP)
	}
	if jittered.BiasGated {
		t.Fatal("content-fault cell must not be bias-gated (its distribution legitimately shifts)")
	}
	if !jittered.Live() {
		t.Fatalf("jittered cell lost samples: %d/%d", jittered.Accepted, jittered.Requested)
	}
	if jittered.ChiP >= clean.ChiP {
		t.Errorf("jitter did not register: clean p=%.3g, jittered p=%.3g", clean.ChiP, jittered.ChiP)
	}
}

// TestMatrixSurvivesRankedInterface pins liveness and bias on the
// ranked-result dataset specifically: a price-sorted interface is the
// regime where top-k truncation correlates with an attribute.
func TestMatrixSurvivesRankedInterface(t *testing.T) {
	cfg := Config{
		Seed:           5,
		SamplesPerCell: 250,
		Datasets: []DatasetSpec{{
			Name: "ranked", K: 10,
			Build: func(seed int64) *datagen.Dataset { return datagen.RankedListings(150, seed) },
		}},
		Faults: []faultform.Profile{{Name: "none"}},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if !c.OK() {
			t.Errorf("%s/%s/%s failed: live=%v biasOK=%v p=%.3g err=%q",
				c.Dataset, c.Fault, c.Sampler, c.Live(), c.BiasOK, c.ChiP, c.Err)
		}
	}
}

// TestMatrixCancellation propagates a dead context instead of hanging.
func TestMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallConfig(3)); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

// TestReportJSONRoundTrips keeps the -matrix artifact machine-readable.
func TestReportJSONRoundTrips(t *testing.T) {
	rep, err := Run(context.Background(), smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.Seed != rep.Seed {
		t.Fatal("report did not round-trip")
	}
}
