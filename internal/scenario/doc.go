// Package scenario is the correctness workload of the system: a matrix
// runner that sweeps dataset shapes × adversarial interface fault
// profiles × sampler configurations and measures, per cell, whether the
// sampler stayed *unbiased* (chi-square and KS gates against the exact
// selection distribution computed by internal/exact) and *live* (the
// requested samples arrive — no deadlock, no silent sample loss — while
// faultform injects 429 bursts, 5xx blips, top-k jitter, reordering and
// rounded counts into the interface).
//
// Every cell runs the full production stack — replica pipelines over a
// shared history cache over the query-execution layer (coalescing,
// micro-batching, AIMD admission, transient retry) over the faulted
// connector — so the matrix exercises exactly the code paths a live
// deployment uses. Bias is gated only on fault-free cells: content faults
// (jitter, reordering) legitimately change the reachable distribution;
// there the matrix asserts liveness and records the drift.
//
// cmd/hdbench exposes the matrix as `hdbench -matrix`, emitting the
// machine-readable Report; CI runs it nightly as the bias-regression
// gate.
package scenario
