package queryexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

func noSleep(context.Context, time.Duration) error { return nil }

// blippyConn fails the first `fail` Executes of each query key with a
// transient fault, then answers.
type blippyConn struct {
	*formclient.Local
	fail     int
	mu       sync.Mutex
	attempts map[string]int
	faults   atomic.Int64
}

func newBlippy(db *hiddendb.DB, fail int) *blippyConn {
	return &blippyConn{
		Local:    formclient.NewLocal(db),
		fail:     fail,
		attempts: make(map[string]int),
	}
}

func (b *blippyConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	b.mu.Lock()
	b.attempts[q.Key()]++
	n := b.attempts[q.Key()]
	b.mu.Unlock()
	if n <= b.fail {
		b.faults.Add(1)
		return nil, fmt.Errorf("%w: blip", formclient.ErrTransient)
	}
	return b.Local.Execute(ctx, q)
}

func TestTransientRetryRecoversBlips(t *testing.T) {
	db := testDB(t, 300)
	inner := newBlippy(db, 2)
	x := New(inner, Options{TransientRetries: 2, Sleep: noSleep})
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 2})

	res, err := x.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute after blips: %v", err)
	}
	want, _ := db.Execute(q)
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatalf("got %d tuples, want %d", len(res.Tuples), len(want.Tuples))
	}
	st := x.ExecStats()
	if st.TransientRetries != 2 {
		t.Fatalf("TransientRetries = %d, want 2", st.TransientRetries)
	}
	if st.WireCalls != 3 {
		t.Fatalf("WireCalls = %d, want 3", st.WireCalls)
	}
}

func TestTransientRetryBudgetExhausts(t *testing.T) {
	db := testDB(t, 300)
	inner := newBlippy(db, 100) // blips forever
	x := New(inner, Options{TransientRetries: 2, Sleep: noSleep})
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 2})

	_, err := x.Execute(context.Background(), q)
	if !errors.Is(err, formclient.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if st := x.ExecStats(); st.WireCalls != 3 {
		t.Fatalf("WireCalls = %d, want 3 (1 + 2 retries)", st.WireCalls)
	}
}

func TestTransientRetryDisabled(t *testing.T) {
	db := testDB(t, 300)
	inner := newBlippy(db, 1)
	x := New(inner, Options{TransientRetries: -1, Sleep: noSleep})
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 2})

	if _, err := x.Execute(context.Background(), q); !errors.Is(err, formclient.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient with retries disabled", err)
	}
}

// blippyBatchConn blips whole batch requests before letting them through,
// exercising the batch-as-a-unit retry.
type blippyBatchConn struct {
	*blippyConn
	batchFails atomic.Int64
	maxFails   int64
	batches    atomic.Int64
}

func (b *blippyBatchConn) ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error) {
	if b.batchFails.Add(1) <= b.maxFails {
		return nil, fmt.Errorf("%w: batch blip", formclient.ErrTransient)
	}
	b.batches.Add(1)
	return b.Local.ExecuteBatch(ctx, qs)
}

func TestBatchTransientRetryBeforeFallback(t *testing.T) {
	db := testDB(t, 300)
	inner := &blippyBatchConn{blippyConn: newBlippy(db, 0), maxFails: 1}
	x := New(inner, Options{
		BatchLinger: 5 * time.Millisecond, MaxBatch: 4,
		TransientRetries: 2, Sleep: noSleep,
	})
	ctx := context.Background()

	qs := []hiddendb.Query{
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 2}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 3}),
	}
	errs := make([]error, len(qs))
	done := make(chan struct{})
	for i, q := range qs {
		go func(i int, q hiddendb.Query) {
			_, errs[i] = x.Execute(ctx, q)
			done <- struct{}{}
		}(i, q)
	}
	for range qs {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	st := x.ExecStats()
	// The first batch wire request blipped; the retry succeeded as a
	// batch — queries must NOT have fallen back to unbatched execution.
	if st.Batched != int64(len(qs)) {
		t.Fatalf("Batched = %d, want %d (no unbatched fallback)", st.Batched, len(qs))
	}
	if st.BatchRequests != 2 {
		t.Fatalf("BatchRequests = %d, want 2 (original + retry)", st.BatchRequests)
	}
	if st.TransientRetries != 1 {
		t.Fatalf("TransientRetries = %d, want 1", st.TransientRetries)
	}
}
