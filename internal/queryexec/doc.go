// Package queryexec is the query-execution layer every concurrent sampler
// path routes through on its way to the interface. It attacks the round
// trips the history cache cannot: the cache memoizes *completed* queries,
// but concurrent replicas walking the same top-of-tree prefixes race
// identical in-flight queries past each other and all miss. The layer
// stacks three mechanisms below the cache:
//
//   - Single-flight coalescing: identical in-flight queries (keyed like
//     the history cache, on the canonical Query.Key) collapse into one
//     wire request whose answer fans out to every waiter.
//   - Micro-batching: a small linger window packs concurrent *distinct*
//     queries into one batch wire request when the connector supports it
//     (formclient.API against webform's POST /api/search/batch). The
//     server executes the whole batch under a single rate-limit charge,
//     so a batch of b queries costs 1/b of the politeness budget each.
//     Connectors without batch support (HTML scraping) fall back to
//     sequential per-query execution — coalescing and limiting still
//     apply.
//   - An AIMD adaptive concurrency limiter shared per host: additive
//     increase on clean responses, multiplicative decrease on 429
//     pushback, plus an aggregate rate meter. This replaces the fixed
//     per-goroutine politeness sleep, which never bounded the *aggregate*
//     rate (N replicas each sleeping independently still hit the site at
//     N times the configured pace).
package queryexec
