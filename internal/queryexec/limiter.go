package queryexec

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// LimiterOptions tunes a Limiter.
type LimiterOptions struct {
	// MaxInFlight is the AIMD concurrency ceiling: at most this many wire
	// requests run at once, and the adaptive window never grows past it.
	// 0 disables concurrency limiting (the limiter still meters rate and
	// tracks in-flight counts).
	MaxInFlight int
	// MinInFlight is the window floor multiplicative decrease cannot cross
	// (default 1).
	MinInFlight int
	// Backoff is the multiplicative-decrease factor applied to the window
	// on rate-limit pushback (default 0.5).
	Backoff float64
	// RatePerSec caps the aggregate wire request rate of every goroutine
	// sharing the limiter — the per-host politeness budget. Unlike a
	// per-goroutine delay, the cap bounds the sum: N workers together
	// never exceed it. 0 disables rate metering.
	RatePerSec float64
	// Burst is the rate meter's token bucket capacity (default 10).
	Burst int
	// Now and Sleep let tests control time; they default to time.Now and a
	// context-aware sleep.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

// Limiter is the shared per-host admission controller of the execution
// layer: an AIMD concurrency window (additive increase per clean request,
// multiplicative decrease on 429 pushback) combined with an aggregate
// rate meter. Every goroutine hitting one host shares one Limiter, so the
// site observes a bounded request stream no matter how many replicas or
// jobs run concurrently. A nil *Limiter is valid and admits everything.
type Limiter struct {
	opts LimiterOptions

	mu       sync.Mutex
	limit    float64 // current AIMD window
	inflight int
	waitq    []chan struct{} // FIFO of admission waiters
	tokens   float64         // rate meter (reservation style: may go negative)
	last     time.Time

	waits    atomic.Int64 // acquisitions the rate meter had to delay
	backoffs atomic.Int64 // multiplicative decreases (congestion events)
}

// NewLimiter builds a limiter; see LimiterOptions for the knobs. The AIMD
// window starts at the ceiling and backs off on pushback.
func NewLimiter(opts LimiterOptions) *Limiter {
	if opts.MinInFlight <= 0 {
		opts.MinInFlight = 1
	}
	if opts.Backoff <= 0 || opts.Backoff >= 1 {
		opts.Backoff = 0.5
	}
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	l := &Limiter{opts: opts, limit: float64(opts.MaxInFlight)}
	l.tokens = float64(opts.Burst)
	return l
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Acquire admits one wire request: it blocks while the AIMD window is
// full, then sleeps off any rate-meter debt. Every successful Acquire
// must be paired with a Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	for l.opts.MaxInFlight > 0 && float64(l.inflight) >= l.limit {
		ch := make(chan struct{})
		l.waitq = append(l.waitq, ch)
		l.mu.Unlock()
		select {
		case <-ch:
			l.mu.Lock()
		case <-ctx.Done():
			l.mu.Lock()
			l.dropWaiter(ch)
			l.mu.Unlock()
			return ctx.Err()
		}
	}
	l.inflight++
	var debt time.Duration
	if l.opts.RatePerSec > 0 {
		now := l.opts.Now()
		if !l.last.IsZero() {
			l.tokens += now.Sub(l.last).Seconds() * l.opts.RatePerSec
			if l.tokens > float64(l.opts.Burst) {
				l.tokens = float64(l.opts.Burst)
			}
		}
		l.last = now
		l.tokens--
		if l.tokens < 0 {
			debt = time.Duration(-l.tokens / l.opts.RatePerSec * float64(time.Second))
		}
	}
	l.mu.Unlock()
	if debt > 0 {
		l.waits.Add(1)
		if err := l.opts.Sleep(ctx, debt); err != nil {
			// The unsent request's slot frees, but its rate reservation
			// stands: the next caller still waits its turn, keeping the
			// meter conservative under cancellation storms.
			l.mu.Lock()
			l.inflight--
			l.wakeLocked()
			l.mu.Unlock()
			return err
		}
	}
	return nil
}

// dropWaiter removes a cancelled admission waiter; if its slot was already
// granted, the grant passes to the next waiter. Caller holds l.mu.
func (l *Limiter) dropWaiter(ch chan struct{}) {
	for i, w := range l.waitq {
		if w == ch {
			l.waitq = append(l.waitq[:i], l.waitq[i+1:]...)
			return
		}
	}
	// Not queued anymore: the grant raced the cancellation. Hand it on.
	l.wakeLocked()
}

// Release returns a slot and feeds the AIMD controller: ok means the wire
// interaction saw no rate-limit pushback (additive increase); !ok records
// congestion (multiplicative decrease).
func (l *Limiter) Release(ok bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.inflight--
	if l.opts.MaxInFlight > 0 {
		if ok {
			l.limit += 1 / l.limit // +1 per window of clean requests
			if l.limit > float64(l.opts.MaxInFlight) {
				l.limit = float64(l.opts.MaxInFlight)
			}
		} else {
			l.limit *= l.opts.Backoff
			if l.limit < float64(l.opts.MinInFlight) {
				l.limit = float64(l.opts.MinInFlight)
			}
			l.backoffs.Add(1)
		}
	}
	l.wakeLocked()
	l.mu.Unlock()
}

// wakeLocked grants free window slots to admission waiters in FIFO order.
// Woken waiters re-check the window, so waking a few too many is safe.
// Caller holds l.mu.
func (l *Limiter) wakeLocked() {
	free := len(l.waitq)
	if l.opts.MaxInFlight > 0 {
		free = int(l.limit) - l.inflight
	}
	for i := 0; i < free && len(l.waitq) > 0; i++ {
		ch := l.waitq[0]
		l.waitq = l.waitq[1:]
		close(ch)
	}
}

// Limit returns the current AIMD window (0 when concurrency limiting is
// disabled or the limiter is nil).
func (l *Limiter) Limit() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.MaxInFlight <= 0 {
		return 0
	}
	return l.limit
}

// InFlight returns the number of admitted, unreleased requests.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Waits returns how many acquisitions the rate meter delayed.
func (l *Limiter) Waits() int64 {
	if l == nil {
		return 0
	}
	return l.waits.Load()
}

// Backoffs returns how many congestion events shrank the window.
func (l *Limiter) Backoffs() int64 {
	if l == nil {
		return 0
	}
	return l.backoffs.Load()
}
