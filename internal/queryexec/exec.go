package queryexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/telemetry"
)

// BatchExecer is the optional connector capability micro-batching needs:
// answering several conjunctive queries in one wire request.
type BatchExecer interface {
	// ExecuteBatch answers qs in order, one result per query.
	ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error)
}

// Options tunes an Executor.
type Options struct {
	// BatchLinger, when positive, holds each wire-bound query up to this
	// long so concurrent distinct queries can share one batch request.
	// Ignored when the wrapped connector is not a BatchExecer.
	BatchLinger time.Duration
	// MaxBatch bounds the queries packed into one batch request (default
	// 16); a full batch flushes immediately, before the linger expires.
	MaxBatch int
	// Limiter is the shared per-host admission controller; nil runs
	// unlimited.
	Limiter *Limiter
	// TransientRetries bounds how many times a wire execution that failed
	// with formclient.ErrTransient (a 5xx blip, a timed-out request, an
	// injected fault) is retried before the error propagates — without it,
	// one blip kills the leader's walk AND every follower coalesced onto
	// the same flight. Default 2; negative disables retrying.
	TransientRetries int
	// Sleep paces transient-retry backoff, overridable by tests; defaults
	// to a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Wire, when set, observes every wire round trip (single-query and
	// batch requests alike); ExecLatency, when set, observes every logical
	// Execute through the layer, including coalescing and linger waits.
	// Wire calls are rare and slow relative to a clock read, so these stay
	// on for all traffic; leave nil to skip the timing entirely.
	Wire        *telemetry.Histogram
	ExecLatency *telemetry.Histogram
}

// Stats counts the execution layer's work.
type Stats struct {
	// Queries is the number of logical queries answered.
	Queries int64
	// Coalesced counts queries answered by joining an identical in-flight
	// query instead of issuing their own wire request.
	Coalesced int64
	// Batched counts queries shipped inside a multi-query batch request;
	// BatchRequests counts those wire requests.
	Batched       int64
	BatchRequests int64
	// WireCalls counts wire executions: single-query requests plus batch
	// requests (each batch is one).
	WireCalls int64
	// TransientRetries counts wire executions repeated after a transient
	// interface fault (formclient.ErrTransient).
	TransientRetries int64
}

// Executor is a formclient.Conn decorator implementing the execution
// layer. It is safe for concurrent use; in a typical stack it sits
// directly above the raw connector, below the shared history cache:
//
//	sampler → history.Cache → queryexec.Executor → formclient.{API,HTTP}
type Executor struct {
	inner formclient.Conn
	batch BatchExecer // nil disables micro-batching
	opts  Options

	mu      sync.Mutex
	calls   map[uint64]*call // keyed by query signature hash; chained on collision
	pending []*pendingQuery
	timer   *time.Timer

	lastRetries atomic.Int64

	queries    atomic.Int64
	coalesced  atomic.Int64
	batched    atomic.Int64
	batchReqs  atomic.Int64
	wire       atomic.Int64
	transients atomic.Int64
}

// call is one in-flight single-flight execution. Calls live in a map
// keyed by the query's precomputed 64-bit signature hash; the full
// canonical key resolves the (vanishingly rare) signature collision via
// the next chain, so distinct queries never share a flight.
type call struct {
	key  string // canonical query key, verified on every hash-slot probe
	next *call  // signature-collision chain within a map slot

	done chan struct{}
	res  *hiddendb.Result
	err  error
}

// findCall walks a hash slot's collision chain for the call matching the
// full canonical key. The caller holds the executor's mutex. The chain
// discipline mirrors history's shard.get/put/detach (internal/history/
// shard.go) — a change to either unlink path likely applies to both;
// each has its own collision-chain test pinning the surgery.
func findCall(calls map[uint64]*call, hash uint64, key string) *call {
	for c := calls[hash]; c != nil; c = c.next {
		if c.key == key {
			return c
		}
	}
	return nil
}

// removeCall unlinks c from its hash slot's chain. The caller holds the
// executor's mutex.
func removeCall(calls map[uint64]*call, hash uint64, c *call) {
	head := calls[hash]
	if head == c {
		if c.next == nil {
			delete(calls, hash)
		} else {
			calls[hash] = c.next
		}
		c.next = nil
		return
	}
	for cur := head; cur != nil; cur = cur.next {
		if cur.next == c {
			cur.next = c.next
			c.next = nil
			return
		}
	}
}

// wireMarks accumulates a traced query's execution-layer outcome
// (exec path, transient retries, AIMD window at send time) for later
// application to its walk trace. The flush goroutine must never touch
// the trace itself — a cancelled enqueuer walks away mid-flight and
// keeps using its trace — so marks are staged here and applied by the
// goroutine that owns the trace.
type wireMarks struct {
	exec    telemetry.ExecOutcome
	retries int
	aimd    float64
}

// apply transfers the staged marks onto the owning walk's trace.
func (m *wireMarks) apply(tr *telemetry.WalkTrace) {
	if m.exec != telemetry.ExecNone {
		tr.MarkExec(m.exec)
	}
	if m.aimd != 0 {
		tr.SetAIMDLimit(m.aimd)
	}
	for i := 0; i < m.retries; i++ {
		tr.AddRetry()
	}
}

// pendingQuery is one query waiting in the linger window. traced asks
// the flush goroutine to stage wireMarks; the enqueuer applies them to
// its trace after the done channel closes (and never reads them when it
// abandons the wait on cancellation).
type pendingQuery struct {
	q      hiddendb.Query
	traced bool
	marks  wireMarks
	res    *hiddendb.Result
	err    error
	done   chan struct{}
}

// New wraps inner with the execution layer. Micro-batching engages only
// when opts.BatchLinger > 0 and inner implements BatchExecer.
func New(inner formclient.Conn, opts Options) *Executor {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 16
	}
	if opts.TransientRetries == 0 {
		opts.TransientRetries = 2
	} else if opts.TransientRetries < 0 {
		opts.TransientRetries = 0
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	x := &Executor{inner: inner, opts: opts, calls: make(map[uint64]*call)}
	// Snapshot the connector's retry counter: pre-existing 429 history on
	// a reused connector is not congestion this executor caused.
	x.lastRetries.Store(inner.Stats().RateLimitRetries)
	if opts.BatchLinger > 0 {
		if be, ok := inner.(BatchExecer); ok {
			x.batch = be
		}
	}
	return x
}

// Schema implements formclient.Conn.
func (x *Executor) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	return x.inner.Schema(ctx)
}

// Stats implements formclient.Conn: like the history cache, the executor
// reports the wrapped connector's real traffic so samplers keep observing
// true query costs. The layer's own effect is in ExecStats.
func (x *Executor) Stats() formclient.Stats { return x.inner.Stats() }

// ExecStats returns the layer's coalescing/batching counters.
func (x *Executor) ExecStats() Stats {
	return Stats{
		Queries:          x.queries.Load(),
		Coalesced:        x.coalesced.Load(),
		Batched:          x.batched.Load(),
		BatchRequests:    x.batchReqs.Load(),
		WireCalls:        x.wire.Load(),
		TransientRetries: x.transients.Load(),
	}
}

// Limiter returns the shared admission controller (nil when unlimited).
func (x *Executor) Limiter() *Limiter { return x.opts.Limiter }

// Execute implements formclient.Conn with single-flight semantics: the
// first caller of a canonical query becomes its leader and executes (via
// the batcher when enabled); callers arriving while it is in flight wait
// and share the answer. Flights are keyed by the query's precomputed
// signature hash (full-key verified), and followers share the leader's
// Result outright — Results are immutable by convention, so fan-out costs
// no deep copies.
//
//hdlint:hotpath
func (x *Executor) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	x.queries.Add(1)
	tr := telemetry.TraceFrom(ctx)
	if x.opts.ExecLatency == nil {
		return x.execute(ctx, q, tr)
	}
	start := time.Now()
	res, err := x.execute(ctx, q, tr)
	x.opts.ExecLatency.Observe(time.Since(start))
	return res, err
}

// execute is Execute's single-flight body; tr is the caller's walk trace
// (nil when untraced).
//
//hdlint:hotpath
func (x *Executor) execute(ctx context.Context, q hiddendb.Query, tr *telemetry.WalkTrace) (*hiddendb.Result, error) {
	hash, key := q.Hash(), q.Key()
	for {
		x.mu.Lock()
		if c := findCall(x.calls, hash, key); c != nil {
			x.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err != nil {
				// A leader cancelled by its own caller must not poison
				// followers whose contexts are still live: retry, becoming
				// the new leader.
				if ctx.Err() == nil && (errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
					continue
				}
				return nil, c.err
			}
			x.coalesced.Add(1)
			if tr != nil {
				tr.MarkExec(telemetry.ExecCoalesced)
			}
			return c.res, nil
		}
		//hdlint:ignore hotpath the leader's flight record: one allocation per distinct in-flight query, amortized across every coalesced follower
		c := &call{key: key, done: make(chan struct{})}
		c.next = x.calls[hash]
		x.calls[hash] = c
		x.mu.Unlock()

		res, err := x.execLeader(ctx, q, tr)

		x.mu.Lock()
		removeCall(x.calls, hash, c)
		c.res, c.err = res, err
		x.mu.Unlock()
		close(c.done)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// execLeader performs the wire-bound execution for a single-flight leader.
func (x *Executor) execLeader(ctx context.Context, q hiddendb.Query, tr *telemetry.WalkTrace) (*hiddendb.Result, error) {
	if x.batch == nil {
		var m *wireMarks
		if tr != nil {
			m = &wireMarks{}
		}
		res, err := x.execDirect(ctx, q, m)
		if tr != nil {
			m.apply(tr)
		}
		return res, err
	}
	return x.enqueue(ctx, q, tr)
}

// execDirect issues one single-query wire request under the limiter,
// retrying transient interface faults within the configured budget. The
// admission slot is held only for the wire call itself — a backoff sleep
// must not starve other queries of the window.
func (x *Executor) execDirect(ctx context.Context, q hiddendb.Query, m *wireMarks) (*hiddendb.Result, error) {
	for attempt := 0; ; attempt++ {
		if err := x.opts.Limiter.Acquire(ctx); err != nil {
			return nil, err
		}
		if m != nil {
			// Traced walks record the AIMD window as seen at send time; the
			// Limit read takes the limiter mutex, so it stays off the
			// untraced path.
			m.exec = telemetry.ExecWire
			m.aimd = x.opts.Limiter.Limit()
		}
		var start time.Time
		if x.opts.Wire != nil {
			start = time.Now()
		}
		res, err := x.inner.Execute(ctx, q)
		if x.opts.Wire != nil {
			x.opts.Wire.Observe(time.Since(start))
		}
		x.wire.Add(1)
		x.opts.Limiter.Release(x.clean(err))
		if !x.retryable(ctx, err, attempt) {
			return res, err
		}
		x.transients.Add(1)
		if m != nil {
			m.retries++
		}
		if serr := x.opts.Sleep(ctx, transientBackoff(attempt)); serr != nil {
			return nil, serr
		}
	}
}

// retryable reports whether a failed wire execution should be repeated:
// only transient faults, only within the budget, and never once the
// caller's context is gone.
func (x *Executor) retryable(ctx context.Context, err error, attempt int) bool {
	return err != nil && attempt < x.opts.TransientRetries &&
		errors.Is(err, formclient.ErrTransient) && ctx.Err() == nil
}

// transientBackoff spaces retry attempts: short, because blips are short.
func transientBackoff(attempt int) time.Duration {
	d := 2 * time.Millisecond << attempt
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// clean reports whether a wire interaction ran free of rate-limit
// pushback; it feeds the AIMD controller. The connector retries 429s
// internally, so pushback is visible as a retry-counter advance (or, past
// the retry budget, as ErrRateLimited).
func (x *Executor) clean(err error) bool {
	retries := x.inner.Stats().RateLimitRetries
	prev := x.lastRetries.Swap(retries)
	if err != nil && errors.Is(err, formclient.ErrRateLimited) {
		return false
	}
	return retries <= prev
}

// enqueue parks a query in the linger window and waits for its flush.
func (x *Executor) enqueue(ctx context.Context, q hiddendb.Query, tr *telemetry.WalkTrace) (*hiddendb.Result, error) {
	p := &pendingQuery{q: q, traced: tr != nil, done: make(chan struct{})}
	x.mu.Lock()
	x.pending = append(x.pending, p)
	var full []*pendingQuery
	if len(x.pending) >= x.opts.MaxBatch {
		full = x.takeLocked()
	} else if len(x.pending) == 1 {
		// The flush must not die with the first enqueuer: it answers every
		// query the window accretes, so it detaches from that caller's
		// cancellation (waiters still honor their own contexts below).
		fctx := context.WithoutCancel(ctx)
		x.timer = time.AfterFunc(x.opts.BatchLinger, func() { x.flush(fctx) })
	}
	x.mu.Unlock()
	if full != nil {
		x.run(context.WithoutCancel(ctx), full)
	}
	select {
	case <-p.done:
		if tr != nil {
			p.marks.apply(tr)
		}
		return p.res, p.err
	case <-ctx.Done():
		// Abandoned: the flush goroutine may still be staging marks into
		// p, so the trace takes none of them.
		return nil, ctx.Err()
	}
}

// takeLocked claims the pending window and disarms its timer; the caller
// holds x.mu.
func (x *Executor) takeLocked() []*pendingQuery {
	batch := x.pending
	x.pending = nil
	if x.timer != nil {
		x.timer.Stop()
		x.timer = nil
	}
	return batch
}

// flush executes whatever the linger window holds (the timer path).
func (x *Executor) flush(ctx context.Context) {
	x.mu.Lock()
	batch := x.takeLocked()
	x.mu.Unlock()
	if len(batch) > 0 {
		x.run(ctx, batch)
	}
}

// run executes one claimed batch: a lone query goes out as a plain
// request; two or more share one batch wire request and one rate-limit
// charge. A failed batch falls back to unbatched execution — one query's
// problem (a server-side budget, a validation error) must not abort its
// batchmates' unrelated walks.
func (x *Executor) run(ctx context.Context, batch []*pendingQuery) {
	if len(batch) == 1 {
		p := batch[0]
		p.res, p.err = x.execDirect(ctx, p.q, p.marksIfTraced())
		close(p.done)
		return
	}
	qs := make([]hiddendb.Query, len(batch))
	for i, p := range batch {
		qs[i] = p.q
	}
	var results []*hiddendb.Result
	var err error
	for attempt := 0; ; attempt++ {
		err = x.opts.Limiter.Acquire(ctx)
		if err != nil {
			break
		}
		limit := -1.0 // Limit() takes the limiter mutex: read once, only if traced
		for _, p := range batch {
			if !p.traced {
				continue
			}
			if limit < 0 {
				limit = x.opts.Limiter.Limit()
			}
			p.marks.aimd = limit
		}
		var start time.Time
		if x.opts.Wire != nil {
			start = time.Now()
		}
		results, err = x.batch.ExecuteBatch(ctx, qs)
		if x.opts.Wire != nil {
			x.opts.Wire.Observe(time.Since(start))
		}
		x.wire.Add(1)
		x.batchReqs.Add(1)
		x.opts.Limiter.Release(x.clean(err))
		if err == nil && len(results) != len(batch) {
			err = fmt.Errorf("queryexec: batch answered %d of %d queries", len(results), len(batch))
		}
		// A transient fault fails the whole batch wire request; retry it as
		// a unit before falling back to per-query execution, so one blip
		// does not cost a full batch's worth of unbatched wire calls.
		if !x.retryable(ctx, err, attempt) {
			break
		}
		x.transients.Add(1)
		for _, p := range batch {
			if p.traced {
				p.marks.retries++
			}
		}
		if serr := x.opts.Sleep(ctx, transientBackoff(attempt)); serr != nil {
			err = serr
			break
		}
	}
	for i, p := range batch {
		if err != nil {
			p.res, p.err = x.execDirect(ctx, p.q, p.marksIfTraced())
		} else {
			p.res = results[i]
			if p.traced {
				p.marks.exec = telemetry.ExecBatched
			}
			x.batched.Add(1)
		}
		close(p.done)
	}
}

// marksIfTraced returns the staging area for a traced pending query, nil
// otherwise.
func (p *pendingQuery) marksIfTraced() *wireMarks {
	if !p.traced {
		return nil
	}
	return &p.marks
}

var _ formclient.Conn = (*Executor)(nil)
