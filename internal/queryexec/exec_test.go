package queryexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// slowConn wraps a Local conn, holding every Execute long enough for
// concurrent identical queries to pile up on the in-flight call.
type slowConn struct {
	*formclient.Local
	delay time.Duration
	execs atomic.Int64
	peak  atomic.Int64 // peak concurrent Executes
	cur   atomic.Int64
}

func (s *slowConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	cur := s.cur.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	defer s.cur.Add(-1)
	s.execs.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.Local.Execute(ctx, q)
}

func testDB(t testing.TB, n int) *hiddendb.DB {
	t.Helper()
	ds := datagen.Vehicles(n, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCoalesceIdenticalInFlight(t *testing.T) {
	db := testDB(t, 500)
	inner := &slowConn{Local: formclient.NewLocal(db), delay: 20 * time.Millisecond}
	x := New(inner, Options{})
	ctx := context.Background()
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1})

	const workers = 16
	var wg sync.WaitGroup
	results := make([]*hiddendb.Result, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = x.Execute(ctx, q)
		}(i)
	}
	wg.Wait()

	want, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if len(results[i].Tuples) != len(want.Tuples) || results[i].Overflow != want.Overflow {
			t.Fatalf("worker %d got %d tuples (overflow %v), want %d (%v)",
				i, len(results[i].Tuples), results[i].Overflow, len(want.Tuples), want.Overflow)
		}
	}
	st := x.ExecStats()
	if st.Queries != workers {
		t.Fatalf("Queries = %d, want %d", st.Queries, workers)
	}
	// At least some of the racers must have shared an in-flight answer; a
	// 20ms hold makes "all 16 executed separately" effectively impossible.
	if st.Coalesced == 0 {
		t.Fatal("no queries coalesced despite 16 racers on one key")
	}
	if got := inner.execs.Load(); got+st.Coalesced != workers {
		t.Fatalf("wire executes (%d) + coalesced (%d) != %d logical queries", got, st.Coalesced, workers)
	}
	// Fan-out answers share the leader's immutable Result (read-only by
	// convention); a caller wanting mutable rows clones, and the clone
	// must be detached from every other caller's answer.
	if len(results[0].Tuples) > 0 {
		c := results[0].Tuples[0].Clone()
		c.Vals[0] = -99
		for i := 1; i < workers; i++ {
			if len(results[i].Tuples) > 0 && results[i].Tuples[0].Vals[0] == -99 {
				t.Fatal("cloned tuple aliases coalesced results")
			}
		}
	}
}

func TestCoalesceDistinctKeysDoNotShare(t *testing.T) {
	db := testDB(t, 200)
	inner := formclient.NewLocal(db)
	x := New(inner, Options{})
	ctx := context.Background()
	r1, err := x.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0}))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := x.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if x.ExecStats().Coalesced != 0 {
		t.Fatal("distinct sequential queries reported as coalesced")
	}
	w1, _ := db.Execute(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0}))
	w2, _ := db.Execute(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1}))
	if len(r1.Tuples) != len(w1.Tuples) || len(r2.Tuples) != len(w2.Tuples) {
		t.Fatalf("wrong answers: %d/%d want %d/%d", len(r1.Tuples), len(r2.Tuples), len(w1.Tuples), len(w2.Tuples))
	}
}

func TestBatchingPacksDistinctQueries(t *testing.T) {
	db := testDB(t, 500)
	inner := formclient.NewLocal(db)
	x := New(inner, Options{BatchLinger: 10 * time.Millisecond, MaxBatch: 8})
	ctx := context.Background()

	const workers = 6
	var wg sync.WaitGroup
	errs := make([]error, workers)
	results := make([]*hiddendb.Result, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i})
			results[i], errs[i] = x.Execute(ctx, q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		want, err := db.Execute(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i}))
		if err != nil {
			t.Fatal(err)
		}
		if len(results[i].Tuples) != len(want.Tuples) {
			t.Fatalf("worker %d: %d tuples, want %d", i, len(results[i].Tuples), len(want.Tuples))
		}
	}
	st := x.ExecStats()
	if st.Batched == 0 || st.BatchRequests == 0 {
		t.Fatalf("nothing batched: %+v", st)
	}
	if st.WireCalls >= workers {
		t.Fatalf("wire calls = %d for %d distinct concurrent queries; batching saved nothing", st.WireCalls, workers)
	}
	if inner.BatchCalls() != st.BatchRequests {
		t.Fatalf("connector saw %d batch calls, executor reports %d", inner.BatchCalls(), st.BatchRequests)
	}
}

func TestBatchFullWindowFlushesEarly(t *testing.T) {
	db := testDB(t, 200)
	inner := formclient.NewLocal(db)
	// An hour-long linger: only the size trigger can flush.
	x := New(inner, Options{BatchLinger: time.Hour, MaxBatch: 2})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i})
			if _, err := x.Execute(ctx, q); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full batch never flushed before the linger deadline")
	}
	if st := x.ExecStats(); st.BatchRequests != 1 || st.Batched != 2 {
		t.Fatalf("stats = %+v, want one batch of two", st)
	}
}

func TestBatchSingletonGoesDirect(t *testing.T) {
	db := testDB(t, 200)
	inner := formclient.NewLocal(db)
	x := New(inner, Options{BatchLinger: time.Millisecond, MaxBatch: 8})
	if _, err := x.Execute(context.Background(), hiddendb.EmptyQuery()); err != nil {
		t.Fatal(err)
	}
	st := x.ExecStats()
	if st.BatchRequests != 0 || st.Batched != 0 {
		t.Fatalf("lone query went through the batch endpoint: %+v", st)
	}
	if inner.BatchCalls() != 0 {
		t.Fatal("connector saw a batch call for a lone query")
	}
}

// brokenBatchConn answers single queries but fails every batch request —
// the shape of a server-side batch rejection.
type brokenBatchConn struct {
	*formclient.Local
	batchCalls atomic.Int64
}

func (b *brokenBatchConn) ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error) {
	b.batchCalls.Add(1)
	return nil, errors.New("batch endpoint down")
}

// TestBatchFailureFallsBackUnbatched: one query's server-side problem
// must not abort its batchmates — the executor retries each member
// individually.
func TestBatchFailureFallsBackUnbatched(t *testing.T) {
	db := testDB(t, 300)
	inner := &brokenBatchConn{Local: formclient.NewLocal(db)}
	x := New(inner, Options{BatchLinger: 10 * time.Millisecond, MaxBatch: 8})
	ctx := context.Background()
	const workers = 5
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i})
			res, err := x.Execute(ctx, q)
			if err != nil {
				t.Errorf("worker %d failed despite unbatched fallback: %v", i, err)
				return
			}
			want, _ := db.Execute(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i}))
			if len(res.Tuples) != len(want.Tuples) {
				t.Errorf("worker %d: %d tuples, want %d", i, len(res.Tuples), len(want.Tuples))
			}
		}(i)
	}
	wg.Wait()
	st := x.ExecStats()
	if st.Batched != 0 {
		t.Fatalf("failed batches reported %d batched queries", st.Batched)
	}
	if inner.batchCalls.Load() > 0 && st.WireCalls <= st.BatchRequests {
		t.Fatalf("no unbatched retries recorded: %+v", st)
	}
}

// errConn fails every execute with a caller-chosen error.
type errConn struct {
	schema *hiddendb.Schema
	err    error
}

func (e *errConn) Schema(ctx context.Context) (*hiddendb.Schema, error) { return e.schema, nil }
func (e *errConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	return nil, e.err
}
func (e *errConn) Stats() formclient.Stats { return formclient.Stats{} }

func TestErrorsPropagateToAllWaiters(t *testing.T) {
	ds := datagen.Vehicles(50, 7)
	boom := errors.New("boom")
	x := New(&errConn{schema: ds.Schema, err: boom}, Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := x.Execute(ctx, hiddendb.EmptyQuery()); !errors.Is(err, boom) {
				t.Errorf("error = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
}

func TestLimiterAIMD(t *testing.T) {
	l := NewLimiter(LimiterOptions{MaxInFlight: 8})
	ctx := context.Background()
	if got := l.Limit(); got != 8 {
		t.Fatalf("initial limit = %g, want 8", got)
	}
	// Congestion: multiplicative decrease.
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	l.Release(false)
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after one backoff = %g, want 4", got)
	}
	if l.Backoffs() != 1 {
		t.Fatalf("backoffs = %d, want 1", l.Backoffs())
	}
	// Recovery: additive increase, ~+1 per window of clean requests.
	for i := 0; i < 64; i++ {
		if err := l.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		l.Release(true)
	}
	if got := l.Limit(); got <= 4 || got > 8 {
		t.Fatalf("limit after recovery = %g, want in (4, 8]", got)
	}
	// The floor holds under repeated congestion.
	for i := 0; i < 20; i++ {
		if err := l.Acquire(ctx); err != nil {
			t.Fatal(err)
		}
		l.Release(false)
	}
	if got := l.Limit(); got < 1 {
		t.Fatalf("limit fell below the floor: %g", got)
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	db := testDB(t, 500)
	inner := &slowConn{Local: formclient.NewLocal(db), delay: 5 * time.Millisecond}
	lim := NewLimiter(LimiterOptions{MaxInFlight: 3})
	x := New(inner, Options{Limiter: lim})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := hiddendb.MustQuery(
				hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i % 8},
				hiddendb.Predicate{Attr: datagen.VehAttrYear, Value: i % 3})
			if _, err := x.Execute(ctx, q); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if peak := inner.peak.Load(); peak > 3 {
		t.Fatalf("peak wire concurrency %d exceeds MaxInFlight 3", peak)
	}
	if l := lim.InFlight(); l != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", l)
	}
}

func TestLimiterRateSpacing(t *testing.T) {
	now := time.Unix(0, 0)
	var slept []time.Duration
	l := NewLimiter(LimiterOptions{
		RatePerSec: 2, Burst: 1,
		Now:   func() time.Time { return now },
		Sleep: func(ctx context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	})
	ctx := context.Background()
	// Burst token: immediate.
	if err := l.Acquire(ctx); err != nil || len(slept) != 0 {
		t.Fatalf("first acquire slept %v, err %v", slept, err)
	}
	l.Release(true)
	// Same instant: one token of debt = 500ms at 2/s.
	if err := l.Acquire(ctx); err != nil || len(slept) != 1 || slept[0] != 500*time.Millisecond {
		t.Fatalf("second acquire slept %v, err %v", slept, err)
	}
	l.Release(true)
	// After a second the bucket has refilled one token.
	now = now.Add(time.Second)
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	l.Release(true)
	if len(slept) != 1 {
		t.Fatalf("refilled acquire slept again: %v", slept)
	}
	if l.Waits() != 1 {
		t.Fatalf("waits = %d, want 1", l.Waits())
	}
}

func TestLimiterCancelled(t *testing.T) {
	l := NewLimiter(LimiterOptions{RatePerSec: 0.001, Burst: 1})
	ctx, cancel := context.WithCancel(context.Background())
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	l.Release(true)
	cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("acquire with cancelled context succeeded")
	}
	if l.InFlight() != 0 {
		t.Fatalf("cancelled acquire leaked an in-flight slot: %d", l.InFlight())
	}
}

// TestAggregateRateBounded is the politeness guarantee the old
// per-goroutine sleep never gave: N concurrent workers sharing one
// limiter together stay under the configured rate. 8 workers race 120
// acquisitions through a 400/s budget — the run cannot finish faster
// than ~(120-burst)/400s no matter how many goroutines push.
func TestAggregateRateBounded(t *testing.T) {
	const (
		workers = 8
		total   = 120
		rate    = 400.0
		burst   = 10
	)
	l := NewLimiter(LimiterOptions{RatePerSec: rate, Burst: burst})
	ctx := context.Background()
	var wg sync.WaitGroup
	var n atomic.Int64
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n.Add(1) <= total {
				if err := l.Acquire(ctx); err != nil {
					t.Error(err)
					return
				}
				l.Release(true)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	minWall := time.Duration(float64(total-burst) / rate * float64(time.Second))
	// Generous slack for scheduler jitter: the aggregate stream must
	// still have been paced, not 8× the budget.
	if elapsed < minWall/2 {
		t.Fatalf("%d acquisitions across %d workers took %v; a %g/s budget requires >= %v",
			total, workers, elapsed, rate, minWall)
	}
	if l.Waits() == 0 {
		t.Fatal("rate meter never delayed anyone")
	}
}

func TestExecutorConnInterface(t *testing.T) {
	db := testDB(t, 100)
	x := New(formclient.NewLocal(db), Options{})
	var conn formclient.Conn = x
	s, err := conn.Schema(context.Background())
	if err != nil || s.NumAttrs() == 0 {
		t.Fatalf("schema via Conn: %v", err)
	}
	if _, err := conn.Execute(context.Background(), hiddendb.EmptyQuery()); err != nil {
		t.Fatal(err)
	}
	if conn.Stats().Queries == 0 {
		t.Fatal("Stats does not surface the wrapped connector's traffic")
	}
	if fmt.Sprint(x.Limiter()) != "<nil>" {
		t.Fatal("unlimited executor should have a nil limiter")
	}
}
