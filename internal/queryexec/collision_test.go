package queryexec

import "testing"

// TestCallCollisionChainFullKeyVerify drives the single-flight call map's
// collision handling directly: calls whose signature hashes collide must
// stay distinguishable by full canonical key, and removal must never
// unlink a bystander flight.
func TestCallCollisionChainFullKeyVerify(t *testing.T) {
	calls := make(map[uint64]*call)
	const h = uint64(0x5eed)
	insert := func(key string) *call {
		c := &call{key: key, done: make(chan struct{})}
		c.next = calls[h]
		calls[h] = c
		return c
	}
	c1 := insert("0=1")
	c2 := insert("3=2")
	c3 := insert("7=0")
	if len(calls) != 1 {
		t.Fatalf("colliding calls occupy %d slots, want 1", len(calls))
	}
	for _, c := range []*call{c1, c2, c3} {
		if got := findCall(calls, h, c.key); got != c {
			t.Fatalf("findCall(%q) = %v, want its own call", c.key, got)
		}
	}
	if got := findCall(calls, h, "9=9"); got != nil {
		t.Fatalf("findCall of absent key = %q", got.key)
	}
	if got := findCall(calls, h+1, c1.key); got != nil {
		t.Fatalf("findCall under wrong hash = %q", got.key)
	}

	removeCall(calls, h, c2) // middle
	if findCall(calls, h, c2.key) != nil || findCall(calls, h, c1.key) != c1 || findCall(calls, h, c3.key) != c3 {
		t.Fatal("removeCall(middle) corrupted the chain")
	}
	removeCall(calls, h, c3) // head
	if findCall(calls, h, c3.key) != nil || findCall(calls, h, c1.key) != c1 {
		t.Fatal("removeCall(head) corrupted the chain")
	}
	removeCall(calls, h, c1) // last
	if len(calls) != 0 {
		t.Fatalf("slot not reclaimed after final removal: %d", len(calls))
	}
}
