package webui

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/htmlx"
)

func uiServer(t *testing.T) (*hiddendb.DB, *httptest.Server) {
	t.Helper()
	ds := datagen.Vehicles(2000, 3)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 500, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(formclient.NewLocal(db), db.K()))
	t.Cleanup(srv.Close)
	return db, srv
}

func TestSettingsPage(t *testing.T) {
	_, srv := uiServer(t)
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	root := htmlx.Parse(string(body))
	forms := htmlx.ExtractForms(root)
	if len(forms) != 1 || forms[0].Action != "/start" {
		t.Fatalf("start form missing: %+v", forms)
	}
	// One checkbox per attribute plus controls.
	checkboxes := 0
	for _, in := range forms[0].Inputs {
		if in.Type == "checkbox" && in.Name == "attr" {
			checkboxes++
		}
	}
	if checkboxes != 10 {
		t.Fatalf("attribute checkboxes = %d, want 10", checkboxes)
	}
	if !strings.Contains(string(body), "efficiency") {
		t.Error("slider missing")
	}
}

func startRun(t *testing.T, srv *httptest.Server, form url.Values) {
	t.Helper()
	resp, err := srv.Client().PostForm(srv.URL+"/start", form)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("start status = %d", resp.StatusCode)
	}
}

func getStatus(t *testing.T, srv *httptest.Server) statusResponse {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStartStatusAndCompletion(t *testing.T) {
	_, srv := uiServer(t)
	// Before any run, status is inactive.
	if st := getStatus(t, srv); st.Active {
		t.Fatal("status active before start")
	}
	startRun(t, srv, url.Values{
		"n": {"30"}, "slider": {"10"}, "method": {"walk"},
		"attr": {"0", "5", "6"}, "history": {"on"}, "shuffle": {"on"},
	})
	deadline := time.Now().Add(10 * time.Second)
	var st statusResponse
	for time.Now().Before(deadline) {
		st = getStatus(t, srv)
		if st.Done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !st.Done {
		t.Fatalf("run did not finish: %+v", st)
	}
	if st.Error != "" {
		t.Fatalf("run error: %s", st.Error)
	}
	if st.Accepted != 30 {
		t.Fatalf("accepted = %d, want 30", st.Accepted)
	}
	if len(st.Marginals) != 3 {
		t.Fatalf("marginals = %d, want 3 (scoped attrs)", len(st.Marginals))
	}
	if st.Marginals[0].Name != "make" {
		t.Fatalf("first marginal = %q", st.Marginals[0].Name)
	}
	sum := 0
	for _, c := range st.Marginals[0].Counts {
		sum += c
	}
	if sum != 30 {
		t.Fatalf("histogram total = %d, want 30", sum)
	}
	if len(st.Recent) == 0 || len(st.Recent[0]) != 10 {
		t.Fatalf("recent rows malformed: %d rows", len(st.Recent))
	}
}

func TestKillSwitch(t *testing.T) {
	_, srv := uiServer(t)
	startRun(t, srv, url.Values{
		"n": {"100000"}, "slider": {"0"}, "method": {"walk"}, "attr": {"0", "1", "2"},
	})
	resp, err := srv.Client().Post(srv.URL+"/stop", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stop status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, srv); st.Done {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("run not stopped by kill switch")
}

func TestAggregateEndpoint(t *testing.T) {
	_, srv := uiServer(t)
	// No run yet: error response.
	resp, _ := srv.Client().Get(srv.URL + "/aggregate?op=avg&attr=3&predattr=0&predval=0")
	var agg aggResponse
	json.NewDecoder(resp.Body).Decode(&agg)
	resp.Body.Close()
	if agg.Error == "" {
		t.Fatal("aggregate before run should error")
	}
	// Slider 0 is the UI's "fastest" end (accept everything): the run must
	// complete quickly.
	startRun(t, srv, url.Values{
		"n": {"60"}, "slider": {"0"}, "method": {"count"},
		"attr": {"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"},
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, srv); st.Done {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	// AVG(price) over all samples.
	resp, err := srv.Client().Get(srv.URL + "/aggregate?op=avg&attr=3&predattr=6&predval=1")
	if err != nil {
		t.Fatal(err)
	}
	agg = aggResponse{}
	json.NewDecoder(resp.Body).Decode(&agg)
	resp.Body.Close()
	if agg.Error != "" {
		t.Fatalf("aggregate error: %s", agg.Error)
	}
	if agg.N == 0 || agg.Value <= 0 {
		t.Fatalf("aggregate = %+v", agg)
	}
	// Bad parameters.
	resp, _ = srv.Client().Get(srv.URL + "/aggregate?op=avg&attr=99&predattr=0&predval=0")
	agg = aggResponse{}
	json.NewDecoder(resp.Body).Decode(&agg)
	resp.Body.Close()
	if agg.Error == "" {
		t.Fatal("bad attr accepted")
	}
	resp, _ = srv.Client().Get(srv.URL + "/aggregate?op=median&attr=3&predattr=0&predval=0")
	agg = aggResponse{}
	json.NewDecoder(resp.Body).Decode(&agg)
	resp.Body.Close()
	if agg.Error == "" {
		t.Fatal("unknown op accepted")
	}
}

func TestStartValidation(t *testing.T) {
	_, srv := uiServer(t)
	for name, form := range map[string]url.Values{
		"badN":      {"n": {"x"}, "slider": {"50"}, "attr": {"0"}},
		"badSlider": {"n": {"10"}, "slider": {"101"}, "attr": {"0"}},
		"noAttrs":   {"n": {"10"}, "slider": {"50"}},
		"badAttr":   {"n": {"10"}, "slider": {"50"}, "attr": {"77"}},
		"badMethod": {"n": {"10"}, "slider": {"50"}, "attr": {"0"}, "method": {"magic"}},
	} {
		resp, err := srv.Client().PostForm(srv.URL+"/start", form)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestUnknownPath(t *testing.T) {
	_, srv := uiServer(t)
	resp, err := srv.Client().Get(srv.URL + "/nothing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
