// Package webui serves HDSampler's interactive front end: the attribute
// and sample-size settings of the demo's Figure 3, the efficiency↔skew
// slider of §3.1, live-updating marginal histograms and recent samples of
// Figure 4 (polled AJAX-style), an aggregate-query box (§3.4), and the kill
// switch. It drives any formclient.Conn.
package webui

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"sync"

	"hdsampler/internal/core"
	"hdsampler/internal/estimate"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

// Server is the front-end HTTP handler. One sampling run is active at a
// time, mirroring the demo's single-analyst flow.
type Server struct {
	conn formclient.Conn
	k    int

	mu     sync.Mutex
	schema *hiddendb.Schema
	run    *run
	nextID int64
}

// run is one sampling session.
type run struct {
	id       int64
	pipeline *core.Pipeline
	acc      *estimate.Accumulator
	target   int
	attrs    []int
	mu       sync.Mutex
	samples  []hiddendb.Tuple
	done     bool
	err      error
}

// NewServer builds the UI over a connector; k is the target interface's
// top-k limit (used for the slider-to-C mapping; 0 defaults to 1000).
func NewServer(conn formclient.Conn, k int) *Server {
	if k <= 0 {
		k = 1000
	}
	return &Server{conn: conn, k: k}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/" && r.Method == http.MethodGet:
		s.handleSettings(w, r)
	case r.URL.Path == "/start" && r.Method == http.MethodPost:
		s.handleStart(w, r)
	case r.URL.Path == "/stop" && r.Method == http.MethodPost:
		s.handleStop(w, r)
	case r.URL.Path == "/status" && r.Method == http.MethodGet:
		s.handleStatus(w, r)
	case r.URL.Path == "/aggregate" && r.Method == http.MethodGet:
		s.handleAggregate(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) getSchema(ctx context.Context) (*hiddendb.Schema, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.schema != nil {
		return s.schema, nil
	}
	schema, err := s.conn.Schema(ctx)
	if err != nil {
		return nil, err
	}
	s.schema = schema
	return schema, nil
}

var settingsTmpl = template.Must(template.New("settings").Parse(`<!DOCTYPE html>
<html>
<head><title>HDSampler</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:60em}
.bar{background:#4a90d9;height:1em;display:inline-block}
.truth{background:#e0a030;height:0.4em;display:inline-block}
table{border-collapse:collapse} td,th{padding:2px 8px;text-align:left}
#hist div.row{white-space:nowrap}
label{margin-right:1em}
</style>
</head>
<body>
<h1>HDSampler — {{.SchemaName}}</h1>
<form method="post" action="/start">
<h2>Attributes to sample</h2>
{{range .Attrs}}<label><input type="checkbox" name="attr" value="{{.Index}}" checked> {{.Name}} ({{.Domain}} values)</label>
{{end}}
<h2>Settings</h2>
<p><label>samples: <input type="number" name="n" value="200" min="1"></label>
<label>method:
<select name="method">
  <option value="walk">random walk (HIDDEN-DB-SAMPLER)</option>
  <option value="count">count-weighted drill-down</option>
  <option value="brute">brute force (validation)</option>
</select></label></p>
<p><label>efficiency &harr; accuracy:
<input type="range" name="slider" min="0" max="100" value="85"></label>
(left = fast/skewed, right = slow/uniform)</p>
<p><label><input type="checkbox" name="history" checked> reuse query history</label>
<label><input type="checkbox" name="shuffle" checked> shuffle attribute order</label></p>
<p><input type="submit" value="Start sampling"></p>
</form>
<div id="live" style="display:none">
<h2>Progress</h2>
<p id="progress"></p>
<button onclick="fetch('/stop',{method:'POST'})">Stop (kill switch)</button>
<h2>Marginal histograms</h2>
<div id="hist"></div>
<h2>Aggregate query</h2>
<p>
<select id="aggop"><option>count</option><option>sum</option><option>avg</option></select>
<select id="aggattr"></select> where <select id="predattr"></select> = <select id="predval"></select>
<button onclick="runAgg()">Estimate</button>
<span id="aggout"></span>
</p>
<h2>Recent samples</h2>
<div id="recent"></div>
</div>
<script>
const schema = {{.SchemaJSON}};
function fillSelect(el, items){ el.innerHTML=''; items.forEach((x,i)=>{const o=document.createElement('option');o.value=i;o.textContent=x;el.appendChild(o);}); }
function initAgg(){
  fillSelect(document.getElementById('aggattr'), schema.attrs.map(a=>a.name));
  fillSelect(document.getElementById('predattr'), schema.attrs.map(a=>a.name));
  document.getElementById('predattr').onchange = e => fillSelect(document.getElementById('predval'), schema.attrs[e.target.value].values);
  fillSelect(document.getElementById('predval'), schema.attrs[0].values);
}
function runAgg(){
  const q = '/aggregate?op='+document.getElementById('aggop').value+
    '&attr='+document.getElementById('aggattr').value+
    '&predattr='+document.getElementById('predattr').value+
    '&predval='+document.getElementById('predval').value;
  fetch(q).then(r=>r.json()).then(j=>{document.getElementById('aggout').textContent = j.error? j.error : (j.value.toFixed(2)+' ± '+j.stderr.toFixed(2)+' (n='+j.n+')');});
}
function poll(){
  fetch('/status').then(r=>r.json()).then(j=>{
    if(!j.active){ return; }
    document.getElementById('live').style.display='block';
    document.getElementById('progress').textContent =
      j.accepted+' / '+j.target+' samples, '+j.candidates+' candidates, '+j.queries+' queries'+(j.done?' — done':'')+(j.error?(' — error: '+j.error):'');
    const hist = document.getElementById('hist'); hist.innerHTML='';
    j.marginals.forEach(m=>{
      const h=document.createElement('h3'); h.textContent=m.name; hist.appendChild(h);
      const max = Math.max(1, ...m.counts);
      m.counts.forEach((c,i)=>{
        const row=document.createElement('div'); row.className='row';
        row.innerHTML = '<span style="display:inline-block;width:10em">'+m.values[i]+'</span>'+
          '<span class="bar" style="width:'+(c*300/max)+'px"></span> '+c;
        hist.appendChild(row);
      });
    });
    const rec = document.getElementById('recent');
    rec.innerHTML = '<table><tr>'+schema.attrs.map(a=>'<th>'+a.name+'</th>').join('')+'</tr>'+
      j.recent.map(r=>'<tr>'+r.map(c=>'<td>'+c+'</td>').join('')+'</tr>').join('')+'</table>';
  });
}
initAgg();
setInterval(poll, 700);
poll();
</script>
</body>
</html>
`))

type settingsAttr struct {
	Index  int
	Name   string
	Domain int
}

func (s *Server) handleSettings(w http.ResponseWriter, r *http.Request) {
	schema, err := s.getSchema(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	type jsAttr struct {
		Name   string   `json:"name"`
		Values []string `json:"values"`
	}
	js := struct {
		Attrs []jsAttr `json:"attrs"`
	}{}
	var attrs []settingsAttr
	for i := range schema.Attrs {
		attrs = append(attrs, settingsAttr{Index: i, Name: schema.Attrs[i].Name, Domain: schema.DomainSize(i)})
		js.Attrs = append(js.Attrs, jsAttr{Name: schema.Attrs[i].Name, Values: schema.Attrs[i].Values})
	}
	blob, err := json.Marshal(js)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data := struct {
		SchemaName string
		Attrs      []settingsAttr
		SchemaJSON template.JS
	}{schema.Name, attrs, template.JS(blob)}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := settingsTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	schema, err := s.getSchema(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n, err := strconv.Atoi(r.Form.Get("n"))
	if err != nil || n < 1 {
		http.Error(w, "bad sample count", http.StatusBadRequest)
		return
	}
	sliderPos, err := strconv.Atoi(r.Form.Get("slider"))
	if err != nil || sliderPos < 0 || sliderPos > 100 {
		http.Error(w, "bad slider", http.StatusBadRequest)
		return
	}
	var attrs []int
	for _, v := range r.Form["attr"] {
		a, err := strconv.Atoi(v)
		if err != nil || a < 0 || a >= schema.NumAttrs() {
			http.Error(w, "bad attribute", http.StatusBadRequest)
			return
		}
		attrs = append(attrs, a)
	}
	if len(attrs) == 0 {
		http.Error(w, "select at least one attribute", http.StatusBadRequest)
		return
	}

	conn := s.conn
	if r.Form.Get("history") != "" {
		conn = history.New(s.conn, history.Options{})
	}
	order := core.OrderFixed
	if r.Form.Get("shuffle") != "" {
		order = core.OrderShuffle
	}
	var gen core.Generator
	//hdlint:ignore ctxflow the launched run outlives the submitting HTTP request by design; deriving from r.Context() would cancel it on response
	ctx := context.Background()
	switch r.Form.Get("method") {
	case "walk", "":
		gen, err = core.NewWalker(ctx, conn, core.WalkerConfig{Seed: s.nextID, Order: order, Attrs: attrs})
	case "count":
		gen, err = core.NewCountWalker(ctx, conn, core.CountWalkerConfig{Seed: s.nextID, Order: order, Attrs: attrs})
	case "brute":
		gen, err = core.NewBruteForce(ctx, conn, core.BruteForceConfig{Seed: s.nextID, Attrs: attrs})
	default:
		http.Error(w, "bad method", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	var rej *core.Rejector
	if r.Form.Get("method") != "brute" {
		// Slider 100 = most uniform in the UI; SliderC's s=1 is fastest,
		// so invert.
		c := core.SliderC(schema, attrs, s.k, 1-float64(sliderPos)/100)
		if c < 1 {
			rej = core.NewRejector(c, s.nextID+1)
		}
	}

	s.mu.Lock()
	if s.run != nil {
		s.run.pipeline.Stop()
	}
	s.nextID += 2
	ru := &run{
		id:       s.nextID,
		pipeline: core.NewPipeline(gen, rej, core.PipelineConfig{Target: n}),
		acc:      estimate.NewAccumulator(schema, 20),
		target:   n,
		attrs:    attrs,
	}
	s.run = ru
	s.mu.Unlock()

	ch := ru.pipeline.Start(ctx)
	go func() {
		for sample := range ch {
			ru.mu.Lock()
			ru.acc.Add(sample.Tuple)
			ru.samples = append(ru.samples, sample.Tuple)
			ru.mu.Unlock()
		}
		ru.mu.Lock()
		ru.done = true
		ru.err = ru.pipeline.Err()
		ru.mu.Unlock()
	}()
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ru := s.run
	s.mu.Unlock()
	if ru != nil {
		ru.pipeline.Stop()
	}
	w.WriteHeader(http.StatusNoContent)
}

// statusResponse is the polled JSON the page renders.
type statusResponse struct {
	Active     bool             `json:"active"`
	Done       bool             `json:"done"`
	Error      string           `json:"error,omitempty"`
	Target     int              `json:"target"`
	Accepted   int64            `json:"accepted"`
	Candidates int64            `json:"candidates"`
	Queries    int64            `json:"queries"`
	Marginals  []statusMarginal `json:"marginals"`
	Recent     [][]string       `json:"recent"`
}

type statusMarginal struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
	Counts []int    `json:"counts"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ru := s.run
	schema := s.schema
	s.mu.Unlock()
	if ru == nil || schema == nil {
		writeJSON(w, statusResponse{Active: false})
		return
	}
	ru.mu.Lock()
	defer ru.mu.Unlock()
	pr := ru.pipeline.Progress()
	resp := statusResponse{
		Active:     true,
		Done:       ru.done,
		Target:     ru.target,
		Accepted:   pr.Accepted,
		Candidates: pr.Candidates,
		Queries:    pr.Queries,
	}
	if ru.err != nil {
		resp.Error = ru.err.Error()
	}
	for _, a := range ru.attrs {
		m := ru.acc.Marginal(a)
		resp.Marginals = append(resp.Marginals, statusMarginal{
			Name:   schema.Attrs[a].Name,
			Values: schema.Attrs[a].Values,
			Counts: m.Counts,
		})
	}
	for _, tu := range ru.acc.Recent() {
		row := make([]string, len(tu.Vals))
		for a, v := range tu.Vals {
			if a < schema.NumAttrs() && v >= 0 && v < schema.DomainSize(a) {
				row[a] = schema.Attrs[a].Values[v]
			}
		}
		resp.Recent = append(resp.Recent, row)
	}
	writeJSON(w, resp)
}

// aggResponse answers an aggregate-query request.
type aggResponse struct {
	Value  float64 `json:"value"`
	StdErr float64 `json:"stderr"`
	N      int     `json:"n"`
	Error  string  `json:"error,omitempty"`
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ru := s.run
	schema := s.schema
	s.mu.Unlock()
	if ru == nil || schema == nil {
		writeJSON(w, aggResponse{Error: "no sampling run yet"})
		return
	}
	q := r.URL.Query()
	op := q.Get("op")
	attr, err1 := strconv.Atoi(q.Get("attr"))
	predAttr, err2 := strconv.Atoi(q.Get("predattr"))
	predVal, err3 := strconv.Atoi(q.Get("predval"))
	if err1 != nil || err2 != nil || err3 != nil ||
		attr < 0 || attr >= schema.NumAttrs() ||
		predAttr < 0 || predAttr >= schema.NumAttrs() ||
		predVal < 0 || predVal >= schema.DomainSize(predAttr) {
		writeJSON(w, aggResponse{Error: "bad aggregate parameters"})
		return
	}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: predAttr, Value: predVal})

	ru.mu.Lock()
	samples := append([]hiddendb.Tuple(nil), ru.samples...)
	ru.mu.Unlock()

	var est estimate.Estimate
	switch op {
	case "count":
		// Without a known population size the UI reports the proportion.
		est = estimate.Proportion(samples, pred)
	case "sum":
		est = estimate.Sum(samples, pred, attr, 1) // per-row scale
	case "avg":
		est = estimate.Avg(samples, pred, attr)
	default:
		writeJSON(w, aggResponse{Error: fmt.Sprintf("unknown op %q", op)})
		return
	}
	writeJSON(w, aggResponse{Value: est.Value, StdErr: est.StdErr, N: est.N})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
