// Package exact computes, for a known database, the exact behaviour of the
// samplers: every tuple's reach probability under the HIDDEN-DB-SAMPLER
// random walk, dead-end probabilities, expected query costs, and the
// post-rejection selection distribution for any target reach probability C.
// The experiments use these closed-form results to report skew and
// queries-per-sample without Monte-Carlo noise.
//
// The analyzer enumerates the (pruned) query tree directly from ground
// truth; it never touches the restricted interface.
package exact

import (
	"fmt"
	"math"
	"math/rand"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/metrics"
)

// Dist is the exact distribution of one walk configuration.
type Dist struct {
	// N is the database size; Reach[id] the probability one walk emits
	// tuple id as its candidate.
	N     int
	Reach []float64
	// DeadEnd is the probability a walk restarts (hits an empty query).
	DeadEnd float64
	// QueriesPerWalk is the expected number of interface queries one walk
	// issues (successful or not).
	QueriesPerWalk float64
	// Unreachable counts tuples with zero reach: rows hidden beyond the
	// top-k of every query that could return them.
	Unreachable int
}

// WalkDist analyzes the fixed-order random walk over db with the given
// attribute order (nil = schema order) and the interface's top-k limit.
func WalkDist(db *hiddendb.DB, order []int, k int) (*Dist, error) {
	schema := db.Schema()
	if order == nil {
		order = make([]int, schema.NumAttrs())
		for i := range order {
			order[i] = i
		}
	}
	seen := make(map[int]bool, len(order))
	for _, a := range order {
		if a < 0 || a >= schema.NumAttrs() {
			return nil, fmt.Errorf("exact: attribute %d out of range", a)
		}
		if seen[a] {
			return nil, fmt.Errorf("exact: duplicate attribute %d in order", a)
		}
		seen[a] = true
	}
	if k < 1 {
		return nil, fmt.Errorf("exact: k = %d, need >= 1", k)
	}
	vals, ids := db.ValsByRank()
	d := &Dist{N: db.Size(), Reach: make([]float64, db.Size())}

	// positions are indexes into vals (rank order); filtering preserves
	// ascending order, so child[:k] is exactly the interface's top-k.
	all := make([]int, len(vals))
	for i := range all {
		all[i] = i
	}
	var rec func(list []int, depth int, p float64)
	rec = func(list []int, depth int, p float64) {
		attr := order[depth]
		dom := schema.DomainSize(attr)
		pChild := p / float64(dom)
		buckets := make([][]int, dom)
		for _, pos := range list {
			v := vals[pos][attr]
			buckets[v] = append(buckets[v], pos)
		}
		for v := 0; v < dom; v++ {
			child := buckets[v]
			d.QueriesPerWalk += pChild // the walk executes this child query
			switch {
			case len(child) == 0:
				d.DeadEnd += pChild
			case len(child) <= k:
				share := pChild / float64(len(child))
				for _, pos := range child {
					d.Reach[ids[pos]] += share
				}
			case depth == len(order)-1:
				// Fully specified but still overflowing: only the top-k
				// duplicates are visible.
				share := pChild / float64(k)
				for _, pos := range child[:k] {
					d.Reach[ids[pos]] += share
				}
			default:
				rec(child, depth+1, pChild)
			}
		}
	}
	rec(all, 0, 1.0)
	for _, r := range d.Reach {
		if r == 0 {
			d.Unreachable++
		}
	}
	return d, nil
}

// AverageWalkDist averages the walk distribution over `orders` random
// attribute orders (the OrderShuffle variant), drawn with the given seed.
func AverageWalkDist(db *hiddendb.DB, k, orders int, seed int64) (*Dist, error) {
	if orders < 1 {
		return nil, fmt.Errorf("exact: orders = %d, need >= 1", orders)
	}
	schema := db.Schema()
	rng := rand.New(rand.NewSource(seed))
	avg := &Dist{N: db.Size(), Reach: make([]float64, db.Size())}
	for o := 0; o < orders; o++ {
		order := rng.Perm(schema.NumAttrs())
		d, err := WalkDist(db, order, k)
		if err != nil {
			return nil, err
		}
		for i, r := range d.Reach {
			avg.Reach[i] += r / float64(orders)
		}
		avg.DeadEnd += d.DeadEnd / float64(orders)
		avg.QueriesPerWalk += d.QueriesPerWalk / float64(orders)
	}
	for _, r := range avg.Reach {
		if r == 0 {
			avg.Unreachable++
		}
	}
	return avg, nil
}

// Summary is the closed-form outcome of running acceptance/rejection with
// target reach probability C on top of a walk distribution.
type Summary struct {
	C float64
	// CandidatePerWalk is the probability a walk yields any candidate;
	// AcceptPerWalk the probability it yields an accepted sample.
	CandidatePerWalk float64
	AcceptPerWalk    float64
	// QueriesPerSample is the expected interface queries per accepted
	// sample (infinite when nothing is accepted).
	QueriesPerSample float64
	// Skew is the coefficient of variation of the selection distribution
	// over all tuples (0 = perfectly uniform); TV its total variation
	// distance from uniform.
	Skew float64
	TV   float64
	// Unreachable tuples can never be sampled (hidden beyond top-k).
	Unreachable int
}

// Summarize computes the rejection outcome for target reach C; C >= 1
// means accept-everything.
func (d *Dist) Summarize(c float64) Summary {
	s := Summary{C: c, Unreachable: d.Unreachable}
	sel := make([]float64, d.N)
	for i, r := range d.Reach {
		s.CandidatePerWalk += r
		p := r
		if c > 0 && c < p {
			p = c
		}
		sel[i] = p
		s.AcceptPerWalk += p
	}
	if s.AcceptPerWalk > 0 {
		s.QueriesPerSample = d.QueriesPerWalk / s.AcceptPerWalk
		norm := make([]float64, d.N)
		uniform := make([]float64, d.N)
		for i := range sel {
			norm[i] = sel[i] / s.AcceptPerWalk
			uniform[i] = 1 / float64(d.N)
		}
		s.Skew = metrics.CV(norm)
		s.TV = metrics.TV(norm, uniform)
	} else {
		s.QueriesPerSample = math.Inf(1)
		s.Skew = math.Inf(1)
		s.TV = 1
	}
	return s
}

// Selection returns the normalized per-tuple selection distribution after
// acceptance/rejection with target reach C — the exact distribution an
// accepted sample is drawn from, the reference the scenario matrix's bias
// gates compare observed counts against. All zeros when nothing can be
// accepted.
func (d *Dist) Selection(c float64) []float64 {
	sel := make([]float64, d.N)
	total := 0.0
	for i, r := range d.Reach {
		p := r
		if c > 0 && c < p {
			p = c
		}
		sel[i] = p
		total += p
	}
	if total <= 0 {
		return make([]float64, d.N)
	}
	for i := range sel {
		sel[i] /= total
	}
	return sel
}

// MinReach returns the smallest positive reach probability — the largest C
// that still yields perfectly uniform samples over reachable tuples.
func (d *Dist) MinReach() float64 {
	min := math.Inf(1)
	for _, r := range d.Reach {
		if r > 0 && r < min {
			min = r
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// CountWalkCost returns the expected interface queries per sample of the
// count-weighted drill-down with exact counts (every walk succeeds, so
// cost per walk equals cost per sample). useParentCount models the
// sibling-inference optimization: |dom|−1 probes per level, plus one
// fetch when the inferred child is the one chosen, plus one root query.
func CountWalkCost(db *hiddendb.DB, order []int, k int, useParentCount bool) (float64, error) {
	schema := db.Schema()
	if order == nil {
		order = make([]int, schema.NumAttrs())
		for i := range order {
			order[i] = i
		}
	}
	if k < 1 {
		return 0, fmt.Errorf("exact: k = %d, need >= 1", k)
	}
	vals, _ := db.ValsByRank()
	all := make([]int, len(vals))
	for i := range all {
		all[i] = i
	}
	var cost float64
	if useParentCount {
		cost++ // root count query
		if len(all) <= k {
			return cost, nil // root valid: sample drawn directly
		}
	}
	var rec func(list []int, depth int, pVisit float64)
	rec = func(list []int, depth int, pVisit float64) {
		attr := order[depth]
		dom := schema.DomainSize(attr)
		probes := float64(dom)
		if useParentCount {
			probes = float64(dom - 1)
		}
		cost += pVisit * probes
		buckets := make([][]int, dom)
		for _, pos := range list {
			buckets[vals[pos][attr]] = append(buckets[vals[pos][attr]], pos)
		}
		total := float64(len(list))
		if useParentCount && len(buckets[dom-1]) > 0 {
			// The inferred last child is fetched only when chosen.
			cost += pVisit * float64(len(buckets[dom-1])) / total
		}
		for v := 0; v < dom; v++ {
			child := buckets[v]
			if len(child) == 0 || len(child) <= k || depth == len(order)-1 {
				continue
			}
			rec(child, depth+1, pVisit*float64(len(child))/total)
		}
	}
	rec(all, 0, 1.0)
	return cost, nil
}

// BruteForceCost returns the expected queries per candidate of the
// BRUTE-FORCE-SAMPLER: |space| / (number of non-empty cells).
func BruteForceCost(db *hiddendb.DB) float64 {
	schema := db.Schema()
	vals, _ := db.ValsByRank()
	cells := make(map[string]bool, len(vals))
	var keyBuf []byte
	for _, row := range vals {
		keyBuf = keyBuf[:0]
		for _, v := range row {
			keyBuf = append(keyBuf, byte(v), byte(v>>8))
		}
		cells[string(keyBuf)] = true
	}
	if len(cells) == 0 {
		return math.Inf(1)
	}
	return schema.SpaceSize() / float64(len(cells))
}
