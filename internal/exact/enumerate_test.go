package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdsampler/internal/hiddendb"
)

// enumerateWalks computes the walk distribution by explicitly simulating
// every possible value sequence of a fixed-order walk — an independent,
// brute-force oracle for WalkDist. Only feasible for tiny schemas.
func enumerateWalks(db *hiddendb.DB, k int) (reach []float64, deadEnd, queries float64) {
	schema := db.Schema()
	m := schema.NumAttrs()
	reach = make([]float64, db.Size())
	vals, ids := db.ValsByRank()

	// Recursive simulation: at depth d, all dom(d) choices are equally
	// likely; match lists are filtered exactly like the interface would.
	var walk func(list []int, depth int, p float64)
	walk = func(list []int, depth int, p float64) {
		attr := depth
		dom := schema.DomainSize(attr)
		for v := 0; v < dom; v++ {
			var child []int
			for _, pos := range list {
				if vals[pos][attr] == v {
					child = append(child, pos)
				}
			}
			pc := p / float64(dom)
			queries += pc
			switch {
			case len(child) == 0:
				deadEnd += pc
			case len(child) <= k:
				for _, pos := range child {
					reach[ids[pos]] += pc / float64(len(child))
				}
			case depth == m-1:
				for _, pos := range child[:k] {
					reach[ids[pos]] += pc / float64(k)
				}
			default:
				walk(child, depth+1, pc)
			}
		}
	}
	all := make([]int, len(vals))
	for i := range all {
		all[i] = i
	}
	walk(all, 0, 1)
	return reach, deadEnd, queries
}

// Property: WalkDist agrees with the independent enumeration oracle on
// random small databases across random k.
func TestWalkDistMatchesEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3) // 2..4 attributes
		doms := make([]hiddendb.Attribute, m)
		for i := range doms {
			d := 2 + rng.Intn(3)
			values := make([]string, d)
			for j := range values {
				values[j] = string(rune('a' + j))
			}
			doms[i] = hiddendb.CatAttr(string(rune('p'+i)), values...)
		}
		schema := hiddendb.MustSchema("tiny", doms...)
		n := 3 + rng.Intn(40)
		tuples := make([]hiddendb.Tuple, n)
		for i := range tuples {
			vals := make([]int, m)
			for a := range vals {
				vals[a] = rng.Intn(schema.DomainSize(a))
			}
			tuples[i] = hiddendb.Tuple{Vals: vals}
		}
		k := 1 + rng.Intn(6)
		db, err := hiddendb.New(schema, tuples, hiddendb.HashRanker{Seed: uint64(seed)}, hiddendb.Config{K: k})
		if err != nil {
			return false
		}
		d, err := WalkDist(db, nil, k)
		if err != nil {
			return false
		}
		wantReach, wantDead, wantQueries := enumerateWalks(db, k)
		for i := range wantReach {
			if math.Abs(d.Reach[i]-wantReach[i]) > 1e-12 {
				return false
			}
		}
		return math.Abs(d.DeadEnd-wantDead) < 1e-12 &&
			math.Abs(d.QueriesPerWalk-wantQueries) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
