package exact

import (
	"context"
	"math"
	"testing"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

func fig1DB(t *testing.T, k int) *hiddendb.DB {
	t.Helper()
	s := hiddendb.MustSchema("fig1",
		hiddendb.BoolAttr("a1"), hiddendb.BoolAttr("a2"), hiddendb.BoolAttr("a3"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 1}},
		{Vals: []int{0, 1, 0}},
		{Vals: []int{0, 1, 1}},
		{Vals: []int{1, 1, 0}},
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWalkDistFigure1(t *testing.T) {
	db := fig1DB(t, 1)
	d, err := WalkDist(db, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.125, 0.125, 0.5}
	for i, w := range want {
		if math.Abs(d.Reach[i]-w) > 1e-12 {
			t.Errorf("reach[%d] = %g, want %g", i, d.Reach[i], w)
		}
	}
	if d.DeadEnd != 0 {
		t.Errorf("dead-end = %g, want 0", d.DeadEnd)
	}
	if math.Abs(d.QueriesPerWalk-1.75) > 1e-12 {
		t.Errorf("queries/walk = %g, want 1.75", d.QueriesPerWalk)
	}
	if d.Unreachable != 0 {
		t.Errorf("unreachable = %d", d.Unreachable)
	}
	if math.Abs(d.MinReach()-0.125) > 1e-12 {
		t.Errorf("MinReach = %g, want 0.125", d.MinReach())
	}
}

func TestSummarizeFigure1(t *testing.T) {
	db := fig1DB(t, 1)
	d, err := WalkDist(db, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// C = 1/8: uniform acceptance, 1/2 accepted per walk, 3.5 q/sample.
	s := d.Summarize(0.125)
	if math.Abs(s.AcceptPerWalk-0.5) > 1e-12 {
		t.Errorf("accept/walk = %g, want 0.5", s.AcceptPerWalk)
	}
	if math.Abs(s.QueriesPerSample-3.5) > 1e-12 {
		t.Errorf("queries/sample = %g, want 3.5", s.QueriesPerSample)
	}
	if s.Skew > 1e-12 || s.TV > 1e-12 {
		t.Errorf("uniform C should have zero skew/TV, got %g/%g", s.Skew, s.TV)
	}
	// C = 1 (accept everything): cheapest, most skewed.
	raw := d.Summarize(1)
	if math.Abs(raw.AcceptPerWalk-1.0) > 1e-12 {
		t.Errorf("accept/walk at C=1 = %g, want 1", raw.AcceptPerWalk)
	}
	if math.Abs(raw.QueriesPerSample-1.75) > 1e-12 {
		t.Errorf("queries/sample at C=1 = %g, want 1.75", raw.QueriesPerSample)
	}
	if raw.Skew <= s.Skew {
		t.Error("C=1 should be more skewed than uniform C")
	}
	// Monotonicity along the slider: cost falls, skew rises.
	prev := s
	for _, c := range []float64{0.2, 0.3, 0.5, 1} {
		cur := d.Summarize(c)
		if cur.QueriesPerSample > prev.QueriesPerSample+1e-9 {
			t.Errorf("cost increased along slider at C=%g", c)
		}
		if cur.Skew < prev.Skew-1e-9 {
			t.Errorf("skew decreased along slider at C=%g", c)
		}
		prev = cur
	}
}

func TestWalkDistMatchesEmpiricalWalker(t *testing.T) {
	// The analyzer and the real sampler must agree on a nontrivial DB.
	ds := datagen.IIDBoolean(6, 120, 0.4, 3)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	d, err := WalkDist(db, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := core.NewWalker(ctx, formclient.NewLocal(db), core.WalkerConfig{Seed: 4, Order: core.OrderFixed})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 30000
	counts := make([]float64, db.Size())
	totalQueries := 0.0
	walks := 0.0
	for i := 0; i < draws; i++ {
		cand, err := w.Candidate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		counts[cand.Tuple.ID]++
		totalQueries += float64(cand.Queries)
		walks += float64(cand.Restarts) + 1
		// Reported reach must match the analyzer's reach exactly... no:
		// reported reach is per-walk-path; the analyzer's Reach[t] sums
		// over paths. For fixed order each tuple has one path, so they
		// must agree.
		if math.Abs(cand.Reach-d.Reach[cand.Tuple.ID]) > 1e-12 {
			t.Fatalf("tuple %d: walker reach %g, analyzer %g",
				cand.Tuple.ID, cand.Reach, d.Reach[cand.Tuple.ID])
		}
	}
	// Empirical candidate distribution ~ Reach / CandidatePerWalk.
	sum := d.Summarize(1)
	for id := 0; id < db.Size(); id++ {
		want := d.Reach[id] / sum.CandidatePerWalk
		got := counts[id] / draws
		if math.Abs(got-want) > 0.012 {
			t.Errorf("tuple %d frequency %g, want %g", id, got, want)
		}
	}
	// Queries per walk agree (walks include restarts).
	gotQPW := totalQueries / walks
	if math.Abs(gotQPW-d.QueriesPerWalk)/d.QueriesPerWalk > 0.05 {
		t.Errorf("empirical queries/walk %g, analyzer %g", gotQPW, d.QueriesPerWalk)
	}
}

func TestWalkDistUnreachableDuplicates(t *testing.T) {
	// Ten identical tuples, k=3: only the top 3 by rank are visible.
	s := hiddendb.MustSchema("dup", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	tuples := make([]hiddendb.Tuple, 10)
	for i := range tuples {
		tuples[i] = hiddendb.Tuple{Vals: []int{1, 0}}
	}
	db, err := hiddendb.New(s, tuples, hiddendb.StaticRanker{Scores: []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}},
		hiddendb.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := WalkDist(db, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Unreachable != 7 {
		t.Fatalf("unreachable = %d, want 7", d.Unreachable)
	}
	// The three visible tuples (IDs 0,1,2 by score) share the a=1,b=0 path.
	for id := 0; id < 3; id++ {
		if math.Abs(d.Reach[id]-0.25/3) > 1e-12 {
			t.Errorf("reach[%d] = %g, want %g", id, d.Reach[id], 0.25/3)
		}
	}
	for id := 3; id < 10; id++ {
		if d.Reach[id] != 0 {
			t.Errorf("reach[%d] = %g, want 0", id, d.Reach[id])
		}
	}
}

func TestAverageWalkDistReducesSkew(t *testing.T) {
	// On a correlated database, shuffling attribute order flattens reach.
	ds := datagen.CorrelatedBoolean(10, 300, 0.9, 5)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := WalkDist(db, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := AverageWalkDist(db, 5, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	fs := fixed.Summarize(1)
	ss := shuffled.Summarize(1)
	if ss.Skew >= fs.Skew {
		t.Errorf("shuffled skew %g not below fixed skew %g", ss.Skew, fs.Skew)
	}
}

func TestWalkDistValidation(t *testing.T) {
	db := fig1DB(t, 1)
	if _, err := WalkDist(db, []int{0, 0}, 1); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := WalkDist(db, []int{9}, 1); err == nil {
		t.Error("out-of-range order accepted")
	}
	if _, err := WalkDist(db, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := AverageWalkDist(db, 1, 0, 1); err == nil {
		t.Error("orders=0 accepted")
	}
}

func TestCountWalkCostMatchesEmpirical(t *testing.T) {
	ds := datagen.ZipfCategorical([]int{4, 3, 3}, 600, 1.0, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 100, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	for _, upc := range []bool{false, true} {
		want, err := CountWalkCost(db, nil, 100, upc)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		cw, err := core.NewCountWalker(ctx, formclient.NewLocal(db),
			core.CountWalkerConfig{Seed: 8, UseParentCount: upc})
		if err != nil {
			t.Fatal(err)
		}
		const draws = 4000
		for i := 0; i < draws; i++ {
			if _, err := cw.Candidate(ctx); err != nil {
				t.Fatal(err)
			}
		}
		got := float64(cw.GenStats().Queries) / draws
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("useParentCount=%v: empirical cost %g, analyzer %g", upc, got, want)
		}
	}
}

func TestBruteForceCost(t *testing.T) {
	// 6 distinct cells in a 16-cell space -> 16/6 queries per candidate.
	s := hiddendb.MustSchema("s",
		hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"),
		hiddendb.BoolAttr("c"), hiddendb.BoolAttr("d"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 0, 0}}, {Vals: []int{0, 1, 0, 1}}, {Vals: []int{1, 0, 1, 0}},
		{Vals: []int{1, 1, 1, 1}}, {Vals: []int{0, 0, 1, 1}}, {Vals: []int{1, 1, 0, 0}},
		{Vals: []int{1, 1, 0, 0}}, // duplicate: same cell
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := BruteForceCost(db); math.Abs(got-16.0/6) > 1e-12 {
		t.Errorf("BruteForceCost = %g, want %g", got, 16.0/6)
	}
}

func TestReachSumsToCandidateProb(t *testing.T) {
	// Σ reach + deadEnd = 1 for any database without full-depth overflow
	// losses; with losses Σ reach + deadEnd < 1 is impossible because the
	// walk always terminates at some node — visible mass may shrink only
	// through the top-k cut at full depth.
	ds := datagen.IIDBoolean(8, 200, 0.5, 9)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, err := WalkDist(db, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := d.DeadEnd
	for _, r := range d.Reach {
		total += r
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probability mass = %g, want 1", total)
	}
}

func TestSelectionMatchesSummarize(t *testing.T) {
	ds := datagen.IIDBoolean(5, 80, 0.5, 3)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	d, err := WalkDist(db, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{1, d.MinReach(), 0.002} {
		sel := d.Selection(c)
		if len(sel) != d.N {
			t.Fatalf("C=%g: selection length %d, want %d", c, len(sel), d.N)
		}
		total := 0.0
		for _, p := range sel {
			if p < 0 {
				t.Fatalf("C=%g: negative selection probability", c)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("C=%g: selection sums to %g, want 1", c, total)
		}
		// Selection must be the normalized min(reach, C) the Summary is
		// computed from: rebuild it independently and compare.
		accept := 0.0
		for _, r := range d.Reach {
			accept += math.Min(r, c)
		}
		for i, r := range d.Reach {
			want := math.Min(r, c) / accept
			if math.Abs(sel[i]-want) > 1e-12 {
				t.Fatalf("C=%g: sel[%d] = %g, want %g", c, i, sel[i], want)
			}
		}
	}
	// At C = MinReach the selection is uniform over reachable tuples.
	sel := d.Selection(d.MinReach())
	reachable := d.N - d.Unreachable
	for i, r := range d.Reach {
		if r == 0 {
			if sel[i] != 0 {
				t.Fatalf("unreachable tuple %d selected with p=%g", i, sel[i])
			}
			continue
		}
		if math.Abs(sel[i]-1/float64(reachable)) > 1e-9 {
			t.Fatalf("tuple %d: p=%g, want uniform %g", i, sel[i], 1/float64(reachable))
		}
	}
}
