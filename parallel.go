package hdsampler

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/estimate"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
	"hdsampler/internal/queryexec"
)

// ReplicaSet is the replica machinery behind DrawParallel, exposed as a
// reusable object for long-running callers (the jobsvc daemon) that need
// live progress and partial results while a draw is underway: `workers`
// independent sampler replicas over the same connector, each with a
// derived seed, drawing concurrently through per-replica pipelines.
//
// When cfg.UseHistory is set the replicas share one history cache, so any
// worker's answers save every other worker's queries. If the connector
// passed in is itself a *history.Cache the set adopts it instead of
// wrapping a new one — that is how a service shares one cache per target
// host across many concurrent ReplicaSets. The cache is sharded
// internally, so replicas read it without serializing on a global lock.
//
// Each replica owns its generator and its acceptance/rejection processor
// (seeded per replica), so no replica shares mutable sampler state with
// another; the acceptors themselves are also concurrency-safe, so even a
// deliberately shared Acceptor would stay race-free.
//
// The combined sample is a fair mixture of independent samplers and keeps
// the per-replica statistical guarantees.
type ReplicaSet struct {
	samplers []*Sampler
	cache    *history.Cache
	exec     *queryexec.Executor
	savedAt0 int64

	mu        sync.Mutex
	started   bool
	startTime time.Time
	elapsed   time.Duration
	pipelines []*Pipeline
	samples   []Sample
}

// NewReplicaSet builds `workers` sampler replicas over conn. Replica i
// samples with seed cfg.Seed + i·7919, so runs with equal configurations
// are reproducible.
func NewReplicaSet(ctx context.Context, conn Conn, cfg Config, workers int) (*ReplicaSet, error) {
	if workers < 1 {
		return nil, fmt.Errorf("hdsampler: workers = %d, need >= 1", workers)
	}
	rs := &ReplicaSet{}
	effective := conn
	if hc, ok := conn.(*history.Cache); ok && cfg.UseHistory {
		// Adopt the caller's (possibly shared) cache. Its stack is the
		// caller's business — the jobsvc daemon already keeps a shared
		// per-host executor below its caches — so no layer is inserted.
		rs.cache = hc
		effective = hc
	} else {
		// The execution layer serves the replicas jointly, so it wraps
		// the shared connector here, below the shared cache: replicas
		// racing one top-of-tree query coalesce on a single wire request,
		// and distinct concurrent cache misses share batch requests.
		if !cfg.Exec.Disable {
			rs.exec = queryexec.New(conn, cfg.Exec.options())
			effective = rs.exec
		}
		if cfg.UseHistory {
			rs.cache = history.New(effective, history.Options{TrustCounts: cfg.TrustCounts})
			effective = rs.cache
		}
	}
	if rs.cache != nil {
		rs.savedAt0 = rs.cache.CacheStats().Saved()
	}
	rs.samplers = make([]*Sampler, workers)
	for i := range rs.samplers {
		wcfg := cfg
		wcfg.Seed = cfg.Seed + int64(i)*7919  // distinct streams per worker
		wcfg.UseHistory = false               // the shared cache sits below
		wcfg.Exec = ExecConfig{Disable: true} // the shared executor, too
		s, err := New(ctx, effective, wcfg)
		if err != nil {
			return nil, err
		}
		rs.samplers[i] = s
	}
	return rs, nil
}

// Workers returns the replica count.
func (rs *ReplicaSet) Workers() int { return len(rs.samplers) }

// Cache returns the history cache the replicas share (adopted or owned),
// or nil when the set runs without history.
func (rs *ReplicaSet) Cache() *history.Cache { return rs.cache }

// ExecStats returns the shared execution layer's counters; ok is false
// when the set runs without the layer (Exec.Disable, or an adopted cache
// whose stack the caller owns).
func (rs *ReplicaSet) ExecStats() (ExecStats, bool) {
	if rs.exec == nil {
		return ExecStats{}, false
	}
	return rs.exec.ExecStats(), true
}

// Schema returns the target database's discovered schema.
func (rs *ReplicaSet) Schema() *Schema { return rs.samplers[0].Schema() }

// C returns the effective rejection target of the replicas (they share
// one configuration, so replica 0 speaks for all).
func (rs *ReplicaSet) C() float64 { return rs.samplers[0].C() }

// Draw collects n accepted samples across the replicas. It may be called
// once per ReplicaSet. On error or cancellation it returns the samples
// accepted so far along with the stats; Samples() keeps the full
// provenance (reach, per-draw query cost) of the same tuples.
func (rs *ReplicaSet) Draw(ctx context.Context, n int) ([]Tuple, Stats, error) {
	rs.mu.Lock()
	if rs.started {
		rs.mu.Unlock()
		return nil, Stats{}, fmt.Errorf("hdsampler: ReplicaSet.Draw called twice")
	}
	rs.started = true
	rs.startTime = time.Now()

	// Split the target across replicas; replicas with a zero quota stay
	// idle (a pipeline target of 0 would run unbounded).
	quota := make([]int, len(rs.samplers))
	for i := 0; i < n; i++ {
		quota[i%len(quota)]++
	}
	rs.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for i, s := range rs.samplers {
		if quota[i] == 0 {
			continue
		}
		// Start before publishing the pipeline, so concurrent Progress
		// calls only ever observe started pipelines.
		p := s.NewPipeline(quota[i])
		ch := p.Start(ctx)
		rs.mu.Lock()
		rs.pipelines = append(rs.pipelines, p)
		rs.mu.Unlock()
		wg.Add(1)
		go func(p *Pipeline, ch <-chan Sample) {
			defer wg.Done()
			for s := range ch {
				rs.mu.Lock()
				rs.samples = append(rs.samples, s)
				rs.mu.Unlock()
			}
			if err := p.Err(); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				errMu.Unlock()
			}
		}(p, ch)
	}
	wg.Wait()

	rs.mu.Lock()
	rs.elapsed = time.Since(rs.startTime)
	tuples := make([]Tuple, len(rs.samples))
	for i := range rs.samples {
		tuples[i] = rs.samples[i].Tuple
	}
	rs.mu.Unlock()

	st := rs.Progress()
	if firstErr == nil && len(tuples) < n {
		// Pipelines stopped short without their own error: the caller's
		// context was cancelled.
		firstErr = ctx.Err()
	}
	return tuples, st, firstErr
}

// Progress returns a live statistics snapshot; safe to call from any
// goroutine while Draw runs, and after it returns.
func (rs *ReplicaSet) Progress() Stats {
	rs.mu.Lock()
	pipelines := rs.pipelines
	accepted := int64(len(rs.samples))
	elapsed := rs.elapsed
	if elapsed == 0 && !rs.startTime.IsZero() {
		elapsed = time.Since(rs.startTime)
	}
	rs.mu.Unlock()

	st := Stats{Accepted: accepted, Elapsed: elapsed}
	for _, p := range pipelines {
		pr := p.Progress()
		st.Candidates += pr.Candidates
		st.Rejected += pr.Rejected
		st.Queries += pr.Queries
	}
	if rs.cache != nil {
		st.QueriesSaved = rs.cache.CacheStats().Saved() - rs.savedAt0
	}
	if rs.exec != nil {
		xs := rs.exec.ExecStats()
		st.QueriesCoalesced = xs.Coalesced
		st.QueriesBatched = xs.Batched
		st.QueriesRetried = xs.TransientRetries
	}
	return st
}

// Samples returns a snapshot of the accepted samples with provenance
// (reach probabilities and per-draw query costs) — the inputs a persisted
// store.SampleSet wants.
func (rs *ReplicaSet) Samples() []Sample {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Sample, len(rs.samples))
	copy(out, rs.samples)
	return out
}

// DrawParallel collects n accepted samples using `workers` independent
// sampler replicas over the same connector (each with a derived seed), the
// natural way to exploit a site that tolerates concurrent clients. When
// cfg.UseHistory is set the replicas share one history cache, so any
// worker's answers save every other worker's queries. It is a one-shot
// convenience over NewReplicaSet.
func DrawParallel(ctx context.Context, conn Conn, cfg Config, n, workers int) ([]Tuple, Stats, error) {
	if workers < 1 {
		return nil, Stats{}, fmt.Errorf("hdsampler: workers = %d, need >= 1", workers)
	}
	if n < workers {
		// More replicas than samples would leave idle workers; a single
		// replica (still through the ReplicaSet, so an injected cache is
		// adopted rather than double-wrapped) is equivalent. A lone
		// sequential replica can never fill a batch window, so drop the
		// linger — it would only add per-query latency.
		workers = 1
		cfg.Exec.BatchLinger = 0
	}
	rs, err := NewReplicaSet(ctx, conn, cfg, workers)
	if err != nil {
		return nil, Stats{}, err
	}
	return rs.Draw(ctx, n)
}

// Crawl exhaustively extracts every reachable tuple through the interface —
// the expensive alternative the paper's introduction argues against; use
// it to price a full crawl against a sample. maxQueries of 0 means
// unlimited.
func Crawl(ctx context.Context, conn Conn, maxQueries int64) ([]Tuple, int64, error) {
	c, err := core.NewCrawler(ctx, conn, core.CrawlerConfig{MaxQueries: maxQueries})
	if err != nil {
		return nil, 0, err
	}
	tuples, err := c.Run(ctx)
	return tuples, c.Queries(), err
}

// PopulationEstimate estimates the hidden database's size. It prefers the
// interface's root count (one query) and otherwise falls back to the
// birthday/collision estimator over the provided samples; ok is false when
// neither source can produce an estimate yet.
func PopulationEstimate(ctx context.Context, conn Conn, samples []Tuple) (Estimate, bool) {
	if res, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err == nil && res.Count != hiddendb.CountAbsent {
		return Estimate{Value: float64(res.Count), N: len(samples)}, true
	}
	est, ok := estimate.PopulationBirthday(samples)
	return est, ok
}
