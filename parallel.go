package hdsampler

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/estimate"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

// DrawParallel collects n accepted samples using `workers` independent
// sampler replicas over the same connector (each with a derived seed), the
// natural way to exploit a site that tolerates concurrent clients. When
// cfg.UseHistory is set the replicas share one history cache, so any
// worker's answers save every other worker's queries.
//
// The combined sample is a fair mixture of independent samplers and keeps
// the per-replica statistical guarantees.
func DrawParallel(ctx context.Context, conn Conn, cfg Config, n, workers int) ([]Tuple, Stats, error) {
	if workers < 1 {
		return nil, Stats{}, fmt.Errorf("hdsampler: workers = %d, need >= 1", workers)
	}
	if workers == 1 || n < workers {
		s, err := New(ctx, conn, cfg)
		if err != nil {
			return nil, Stats{}, err
		}
		return s.Draw(ctx, n)
	}

	// When history is enabled the replicas share a single cache (it is
	// safe for concurrent use), so any worker's answers save every other
	// worker's queries.
	effective := conn
	var shared *history.Cache
	if cfg.UseHistory {
		shared = history.New(conn, history.Options{TrustCounts: cfg.TrustCounts})
		effective = shared
	}
	samplers := make([]*Sampler, workers)
	for i := range samplers {
		wcfg := cfg
		wcfg.Seed = cfg.Seed + int64(i)*7919 // distinct streams per worker
		wcfg.UseHistory = false              // the shared cache sits below
		s, err := New(ctx, effective, wcfg)
		if err != nil {
			return nil, Stats{}, err
		}
		samplers[i] = s
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := time.Now()

	var mu sync.Mutex
	var out []Tuple
	var agg Stats
	var firstErr error
	quota := make([]int, workers)
	for i := 0; i < n; i++ {
		quota[i%workers]++
	}

	var wg sync.WaitGroup
	for i, s := range samplers {
		wg.Add(1)
		go func(i int, s *Sampler) {
			defer wg.Done()
			tuples, st, err := s.Draw(ctx, quota[i])
			mu.Lock()
			defer mu.Unlock()
			out = append(out, tuples...)
			agg.Candidates += st.Candidates
			agg.Accepted += st.Accepted
			agg.Rejected += st.Rejected
			agg.Queries += st.Queries
			if err != nil && firstErr == nil {
				firstErr = err
				cancel()
			}
		}(i, s)
	}
	wg.Wait()
	agg.Elapsed = time.Since(start)
	if shared != nil {
		agg.QueriesSaved = shared.CacheStats().Saved()
	}
	return out, agg, firstErr
}

// Crawl exhaustively extracts every reachable tuple through the interface —
// the expensive alternative the paper's introduction argues against; use
// it to price a full crawl against a sample. maxQueries of 0 means
// unlimited.
func Crawl(ctx context.Context, conn Conn, maxQueries int64) ([]Tuple, int64, error) {
	c, err := core.NewCrawler(ctx, conn, core.CrawlerConfig{MaxQueries: maxQueries})
	if err != nil {
		return nil, 0, err
	}
	tuples, err := c.Run(ctx)
	return tuples, c.Queries(), err
}

// PopulationEstimate estimates the hidden database's size. It prefers the
// interface's root count (one query) and otherwise falls back to the
// birthday/collision estimator over the provided samples; ok is false when
// neither source can produce an estimate yet.
func PopulationEstimate(ctx context.Context, conn Conn, samples []Tuple) (Estimate, bool) {
	if res, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err == nil && res.Count != hiddendb.CountAbsent {
		return Estimate{Value: float64(res.Count), N: len(samples)}, true
	}
	est, ok := estimate.PopulationBirthday(samples)
	return est, ok
}
