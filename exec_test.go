package hdsampler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

// countingTarget serves a vehicles DB behind the web form, counting every
// wire request the samplers actually land on the site.
func countingTarget(t *testing.T, n, k int, opts webform.Options) (*hiddendb.DB, *httptest.Server, *atomic.Int64) {
	t.Helper()
	ds := datagen.Vehicles(n, 31)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	inner := webform.NewServer(db, opts)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return db, srv, &hits
}

// TestDrawParallelExecSavesWireRequests is the tentpole acceptance check:
// an 8-replica draw routed through the execution layer issues measurably
// fewer wire requests than the replicas' combined logical query bill —
// the coalescing + micro-batching win on top of (and independent of) the
// history cache, which is disabled here to isolate the layer.
func TestDrawParallelExecSavesWireRequests(t *testing.T) {
	_, srv, hits := countingTarget(t, 2000, 250, webform.Options{})
	conn := formclient.NewAPI(srv.URL, formclient.HTTPOptions{Client: srv.Client()})
	cfg := Config{
		Seed:         3,
		ShuffleOrder: true,
		Exec: ExecConfig{
			BatchLinger: 2 * time.Millisecond,
			MaxBatch:    16,
			MaxInFlight: 8,
		},
	}
	tuples, stats, err := DrawParallel(context.Background(), conn, cfg, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 64 {
		t.Fatalf("drew %d tuples, want 64", len(tuples))
	}
	logical := stats.Queries
	wire := hits.Load() - 1 // minus the schema fetch
	if logical == 0 {
		t.Fatal("no queries recorded")
	}
	// The baseline bill is one wire request per logical query. With
	// coalescing and batching the stream must compress; 10% slack keeps
	// the assertion robust against scheduling that yields little overlap.
	if wire > logical*9/10 {
		t.Fatalf("wire requests = %d for %d logical queries; execution layer saved nothing", wire, logical)
	}
	if stats.QueriesCoalesced+stats.QueriesBatched == 0 {
		t.Fatal("stats report neither coalesced nor batched queries")
	}
}

// TestDrawParallelAggregateRateBounded proves the politeness guarantee:
// 8 concurrent replicas sharing one execution layer together respect the
// configured per-host budget, where the old per-goroutine sleep allowed
// N× the configured rate.
func TestDrawParallelAggregateRateBounded(t *testing.T) {
	const rate, burst = 300.0, 5
	_, srv, hits := countingTarget(t, 1000, 150, webform.Options{})
	conn := formclient.NewAPI(srv.URL, formclient.HTTPOptions{Client: srv.Client()})
	cfg := Config{
		Seed:         4,
		ShuffleOrder: true,
		Exec:         ExecConfig{RatePerSec: rate, Burst: burst},
	}
	start := time.Now()
	_, _, err := DrawParallel(context.Background(), conn, cfg, 32, 8)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	wire := hits.Load()
	if wire <= burst {
		t.Skipf("only %d wire requests; nothing to pace", wire)
	}
	minWall := time.Duration(float64(wire-burst) / rate * float64(time.Second))
	// Half-slack absorbs timer coarseness; without the shared limiter the
	// draw finishes an order of magnitude faster than minWall.
	if elapsed < minWall/2 {
		t.Fatalf("%d wire requests in %v: aggregate rate %.0f/s blows the %g/s budget",
			wire, elapsed, float64(wire)/elapsed.Seconds(), rate)
	}
}

// TestReplicaSetExecStats covers the layer's wiring and stat plumbing
// over a local connector (batch-capable, so both mechanisms engage).
func TestReplicaSetExecStats(t *testing.T) {
	ds := datagen.Vehicles(1500, 9)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 200})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewReplicaSet(context.Background(), LocalConn(db), Config{
		Seed: 11, ShuffleOrder: true,
		Exec: ExecConfig{BatchLinger: time.Millisecond},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.Draw(context.Background(), 40); err != nil {
		t.Fatal(err)
	}
	xs, ok := rs.ExecStats()
	if !ok {
		t.Fatal("ReplicaSet built without the execution layer")
	}
	if xs.Queries == 0 {
		t.Fatal("executor saw no queries")
	}
	if xs.WireCalls > xs.Queries {
		t.Fatalf("wire calls %d exceed logical queries %d", xs.WireCalls, xs.Queries)
	}
}

// TestReplicaSetExecDisable keeps the opt-out honest (the daemon relies
// on it: its connector stacks already hold a shared executor).
func TestReplicaSetExecDisable(t *testing.T) {
	ds := datagen.Vehicles(200, 9)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewReplicaSet(context.Background(), LocalConn(db), Config{
		Seed: 1, Exec: ExecConfig{Disable: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.ExecStats(); ok {
		t.Fatal("Disable did not bypass the execution layer")
	}
}

// TestSliderZeroExplicit is the satellite regression: Config{Slider: 0,
// SliderSet: true} must select the documented lowest-skew walk (an active
// rejector, C < 1) instead of silently flipping to the accept-everything
// default — while the zero-value Config keeps meaning "fastest".
func TestSliderZeroExplicit(t *testing.T) {
	ds := datagen.Vehicles(500, 5)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	fastest, err := New(ctx, LocalConn(db), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c := fastest.C(); c != 1 {
		t.Fatalf("zero-value Config C = %g, want 1 (fastest)", c)
	}

	lowSkew, err := New(ctx, LocalConn(db), Config{Seed: 1, Slider: 0, SliderSet: true, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if c := lowSkew.C(); c >= 1 || c <= 0 {
		t.Fatalf("explicit Slider: 0 C = %g, want the lowest-skew target in (0,1)", c)
	}

	halfway, err := New(ctx, LocalConn(db), Config{Seed: 1, Slider: 0.5, SliderSet: true, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if lowSkew.C() >= halfway.C() {
		t.Fatalf("slider ordering broken: C(0)=%g >= C(0.5)=%g", lowSkew.C(), halfway.C())
	}
}

// TestSingleSamplerTransientRetryKnob pins that an explicit
// TransientRetries budget alone wires a lone Sampler through the
// execution layer: a one-blip interface must cost a retry, not the draw.
func TestSingleSamplerTransientRetryKnob(t *testing.T) {
	ds := datagen.IIDBoolean(5, 200, 0.5, 9)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	conn := &oneBlipConn{inner: formclient.NewLocal(db)}
	s, err := New(context.Background(), conn, Config{Seed: 4, Exec: ExecConfig{TransientRetries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tuples, _, err := s.Draw(context.Background(), 10)
	if err != nil {
		t.Fatalf("Draw through a transient blip: %v", err)
	}
	if len(tuples) != 10 {
		t.Fatalf("drew %d of 10 samples", len(tuples))
	}
	xs, ok := s.ExecStats()
	if !ok {
		t.Fatal("TransientRetries knob did not wire the execution layer")
	}
	if xs.TransientRetries != 1 {
		t.Fatalf("TransientRetries = %d, want 1", xs.TransientRetries)
	}
	if !conn.blipped.Load() {
		t.Fatal("test conn never blipped")
	}
}

// oneBlipConn fails exactly one Execute with a transient fault.
type oneBlipConn struct {
	inner   formclient.Conn
	blipped atomic.Bool
}

func (c *oneBlipConn) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	return c.inner.Schema(ctx)
}

func (c *oneBlipConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	if c.blipped.CompareAndSwap(false, true) {
		return nil, formclient.ErrTransient
	}
	return c.inner.Execute(ctx, q)
}

func (c *oneBlipConn) Stats() formclient.Stats { return c.inner.Stats() }
