// Module tools pins the repository's development-tool versions with Go
// 1.24 tool directives, so CI never re-resolves a floating @latest (or a
// drifting @2025.1 alias) and every run uses the same analyzer builds.
//
// It is a separate module on purpose: the main module has zero external
// dependencies and builds fully offline, and these tools are wanted only
// on networked CI runners. CI extracts the pinned versions from this
// file (go mod edit -json tools/go.mod) and runs the tools with
// `go run <path>@<version>`; nothing imports this module.
module hdsampler/tools

go 1.24

tool (
	golang.org/x/vuln/cmd/govulncheck
	honnef.co/go/tools/cmd/staticcheck
)

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1 // staticcheck 2025.1.1
)
