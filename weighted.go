package hdsampler

import (
	"context"

	"hdsampler/internal/estimate"
)

// WeightedSet holds reach-weighted candidates for Horvitz–Thompson
// aggregate estimation (see DrawWeighted).
type WeightedSet = estimate.WeightedSet

// DrawWeighted collects n candidates *without* acceptance/rejection,
// keeping each one's exact reach probability. Aggregates computed from the
// returned set via its Count/Sum/Avg/Population methods are unbiased over
// reachable tuples (Horvitz–Thompson weighting), so every interface query
// contributes — the alternative to burning queries on rejection when the
// goal is an aggregate rather than a uniform sample.
func (s *Sampler) DrawWeighted(ctx context.Context, n int) (*WeightedSet, Stats, error) {
	ws := &WeightedSet{}
	startQueries := s.gen.GenStats().Queries
	var savedAt0 int64
	if s.cache != nil {
		savedAt0 = s.cache.CacheStats().Saved()
	}
	var st Stats
	for len(ws.Samples) < n {
		if err := ctx.Err(); err != nil {
			return ws, st, err
		}
		cand, err := s.gen.Candidate(ctx)
		if err != nil {
			st.Queries = s.gen.GenStats().Queries - startQueries
			return ws, st, err
		}
		st.Candidates++
		st.Accepted++
		ws.Add(cand.Tuple, cand.Reach, cand.Restarts)
	}
	st.Queries = s.gen.GenStats().Queries - startQueries
	if s.cache != nil {
		// Per-call delta, like Draw: consecutive calls must not
		// double-report the cache's cumulative savings.
		st.QueriesSaved = s.cache.CacheStats().Saved() - savedAt0
	}
	return ws, st, nil
}
