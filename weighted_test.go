package hdsampler

import (
	"context"
	"math"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

func TestDrawWeighted(t *testing.T) {
	db, conn := localVehicles(t, 8000, 1000, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 11, ShuffleOrder: true, UseHistory: true, K: db.K()})
	if err != nil {
		t.Fatal(err)
	}
	ws, stats, err := s.DrawWeighted(ctx, 800)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Samples) != 800 || ws.Walks < 800 {
		t.Fatalf("set = %d samples over %d walks", len(ws.Samples), ws.Walks)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries counted")
	}

	// HT population estimate tracks the true size without any counts.
	pop := ws.Population()
	if math.Abs(pop.Value-float64(db.Size()))/float64(db.Size()) > 0.25 {
		t.Errorf("HT population %g vs truth %d", pop.Value, db.Size())
	}

	// HT COUNT for a predicate tracks truth.
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1})
	trueCount, _, _ := db.TrueAggregate(pred, -1)
	est := ws.Count(pred)
	if math.Abs(est.Value-float64(trueCount))/float64(trueCount) > 0.25 {
		t.Errorf("HT count %g vs truth %d", est.Value, trueCount)
	}
	// And the 3-sigma CI covers it (seeded, deterministic).
	lo, hi := est.CI(3)
	if float64(trueCount) < lo || float64(trueCount) > hi {
		t.Errorf("CI [%g,%g] misses truth %d", lo, hi, trueCount)
	}
}

func TestDrawWeightedContextCancel(t *testing.T) {
	_, conn := localVehicles(t, 500, 100, hiddendb.CountNone)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := New(ctx, conn, Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, _, err := s.DrawWeighted(ctx, 10); err == nil {
		t.Fatal("cancelled DrawWeighted should fail")
	}
}
